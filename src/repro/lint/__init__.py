"""simlint: AST-based invariant checker for the repro codebase.

The reproduction's headline claim — modelled bandwidths are bit-identical
run-to-run and with/without observability — rests on coding contracts
that ``pytest`` cannot enforce: no wall clock inside the model, no
unseeded randomness, instrumentation dormant behind a single
``is not None`` check, probes that never schedule events, and unit
discipline via :mod:`repro.units`.  This package machine-checks those
contracts on every PR::

    python -m repro.lint src tools examples
    python -m repro.lint --json src            # machine-readable output

Rules (see ``docs/LINTING.md`` for rationale and examples):

========  ================================================================
SL001     no wall-clock reads outside the harness allowlist
SL002     no ``random``/``numpy.random`` module RNG outside the seeded
          stream factory (``repro.sim.randomness``)
SL003     no float ``==``/``!=`` without ``math.isclose`` or an
          ``# exact:`` justification comment
SL004     obs-dormancy: attribute access on an ``obs``-named binding must
          be dominated by an ``is not None`` guard
SL005     ``time_probe`` callbacks must not schedule events or mutate the
          flow network (one-level call-graph walk)
SL006     broad ``except Exception`` without re-raise or justification
SL007     mutable default arguments
SL009     ``except DataLossError`` whose body neither records the loss
          nor re-raises
SL000     file could not be parsed (reported, never crashes the run)
SL008     unused ``# simlint: disable`` suppression
========  ================================================================

Suppress a finding in place with a trailing comment on the flagged line::

    risky_call()  # simlint: disable=SL006 -- justification here

Suppressions that silence nothing are themselves reported (SL008) so
stale pragmas cannot accumulate.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintEngine, lint_paths
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules, get_rule, register
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Finding",
    "Severity",
    "LintConfig",
    "load_config",
    "LintEngine",
    "lint_paths",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "render_text",
    "render_json",
    "main",
]


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro.lint``)."""
    from repro.lint.cli import main as cli_main

    return cli_main(argv)
