"""File discovery, the two-pass driver, and suppression accounting."""

from __future__ import annotations

import ast
import fnmatch
import os
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules
from repro.lint.suppress import ALL_CODES, SuppressionIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.cache import FindingCache

__all__ = ["FileContext", "ProjectIndex", "LintEngine", "lint_paths"]


class FileContext:
    """One parsed source file plus everything rules need to inspect it."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree: Optional[ast.AST] = None
        self.parse_error: Optional[SyntaxError] = None
        self.suppressions = SuppressionIndex.from_source(source)
        try:
            self.tree = ast.parse(source, filename=relpath)
        except SyntaxError as err:
            self.parse_error = err

    def line_text(self, lineno: int) -> str:
        """The physical source line (1-based); empty when out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class ProjectIndex:
    """Cross-file facts gathered in the collect pass.

    ``functions`` maps bare function/method name to every definition site
    (enough for the one-level call-graph walk SL005 performs);
    ``probe_callbacks`` maps callback name to the registration sites that
    assigned it to a ``time_probe`` attribute.
    """

    def __init__(self) -> None:
        self.functions: Dict[str, List[Tuple[str, ast.AST]]] = {}
        self.probe_callbacks: Dict[str, List[str]] = {}

    def add_function(self, name: str, relpath: str, node: ast.AST) -> None:
        self.functions.setdefault(name, []).append((relpath, node))

    def add_probe_callback(self, name: str, site: str) -> None:
        self.probe_callbacks.setdefault(name, []).append(site)


class LintEngine:
    """Discover files, run the collect pass, then check every rule."""

    def __init__(self, config: Optional[LintConfig] = None,
                 rules: Optional[Sequence[Rule]] = None):
        self.config = config or LintConfig()
        self.rules = list(rules) if rules is not None else all_rules()

    # -- discovery -----------------------------------------------------------
    def discover(self, paths: Sequence[str]) -> List[Path]:
        """Expand files/directories into a sorted, de-duplicated file list."""
        seen = {}
        for raw in paths:
            p = Path(raw)
            if p.is_dir():
                candidates: Iterable[Path] = sorted(p.rglob("*.py"))
            elif p.is_file():
                candidates = [p]
            else:
                raise FileNotFoundError(f"no such file or directory: {raw}")
            for c in candidates:
                rel = _relpath(c)
                if self._excluded(rel):
                    continue
                seen[rel] = c
        return [seen[rel] for rel in sorted(seen)]

    def _excluded(self, relpath: str) -> bool:
        posix = relpath.replace(os.sep, "/")
        base = posix.rsplit("/", 1)[-1]
        return any(
            fnmatch.fnmatch(posix, pat) or fnmatch.fnmatch(base, pat)
            for pat in self.config.exclude
        )

    # -- the run -------------------------------------------------------------
    def run(
        self,
        paths: Sequence[str],
        targets: Optional[Sequence[str]] = None,
        cache: Optional["FindingCache"] = None,
    ) -> List[Finding]:
        """Lint ``paths``; findings are sorted and suppression-filtered.

        ``targets`` (incremental mode) restricts the *check* pass to the
        named files while the collect pass still covers every discovered
        file, so cross-file rules keep their whole-program facts.  When a
        ``cache`` is given, a target whose mtime/size/configuration
        fingerprint matches the cached entry is served from it without
        re-running the check pass.
        """
        files = self.discover(paths)
        contexts: List[FileContext] = []
        findings: List[Finding] = []
        target_set: Optional[set[str]] = None
        if targets is not None:
            target_set = {_relpath(Path(t)) for t in targets}
        for path in files:
            rel = _relpath(path)
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as err:
                findings.append(Finding(
                    code="SL000", message=f"cannot read file: {err}",
                    path=rel, line=1, severity=Severity.ERROR,
                    rule_name="parse-error",
                ))
                continue
            contexts.append(FileContext(path, rel, source))

        project = ProjectIndex()
        active = [
            (rule, self.config.severity_for(rule.code, rule.default_severity))
            for rule in self.rules
        ]
        for ctx in contexts:
            if ctx.tree is None:
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    project.add_function(node.name, ctx.relpath, node)
            for rule, severity in active:
                if severity is not Severity.OFF:
                    rule.collect(ctx, project)

        # codes whose rules actually ran: a pragma for a deselected rule
        # is out of scope, not stale (simflow shares pragma syntax with
        # simlint, so each front end only judges its own codes)
        active_codes = {
            rule.code for rule, severity in active if severity is not Severity.OFF
        }
        for ctx in contexts:
            if target_set is not None and ctx.relpath not in target_set:
                continue
            if ctx.parse_error is not None:
                err = ctx.parse_error
                findings.append(Finding(
                    code="SL000", message=f"syntax error: {err.msg}",
                    path=ctx.relpath, line=err.lineno or 1,
                    col=(err.offset or 1) - 1, severity=Severity.ERROR,
                    rule_name="parse-error",
                ))
                continue
            if cache is not None:
                cached = cache.lookup(ctx.path, ctx.relpath)
                if cached is not None:
                    findings.extend(cached)
                    continue
            file_findings: List[Finding] = []
            for rule, severity in active:
                if severity is Severity.OFF:
                    continue
                for finding in rule.check(ctx, project, self.config):
                    # a configured override beats everything; otherwise a
                    # rule may emit individual findings below its default
                    # severity (SL011/SL014 downgrade heuristic cases)
                    if severity is not rule.default_severity:
                        finding.severity = severity
                    if ctx.suppressions.suppresses(finding.code, finding.line):
                        continue
                    file_findings.append(finding)
            sl008 = self.config.severity_for("SL008", Severity.ERROR)
            if sl008 is not Severity.OFF:
                for sup, stale in ctx.suppressions.unused(active_codes):
                    for code in stale:
                        label = "all rules" if code == ALL_CODES else code
                        file_findings.append(Finding(
                            code="SL008",
                            message=(
                                f"unused suppression ({label}): nothing "
                                f"to silence on this line"
                            ),
                            path=ctx.relpath, line=sup.line, severity=sl008,
                            rule_name="unused-suppression",
                        ))
            if cache is not None:
                cache.store(ctx.path, ctx.relpath, file_findings)
            findings.extend(file_findings)
        findings.sort(key=Finding.sort_key)
        return findings


def _relpath(path: Path) -> str:
    """Path relative to the working directory when possible (stable,
    clickable in CI logs), absolute otherwise."""
    try:
        return os.path.relpath(path)
    except ValueError:  # pragma: no cover - different drive on windows
        return str(path)


def lint_paths(paths: Sequence[str],
               config: Optional[LintConfig] = None) -> List[Finding]:
    """Convenience: run every registered rule over ``paths``."""
    return LintEngine(config=config).run(paths)
