"""Observability: registry semantics, span nesting, exporters, and the
zero-overhead guarantee (instrumentation never changes measured numbers)."""

import json

import pytest

import repro.obs as obs_mod
from repro.errors import ConfigError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observability,
    Tracer,
    activated,
    chrome_trace_events,
    current,
    export_chrome_trace,
    export_json,
)
from repro.sim.core import Simulator


# -- metrics registry ------------------------------------------------------------


def test_registry_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("daos.rpc.count", unit="rpcs")
    b = reg.counter("daos.rpc.count")
    assert a is b
    assert len(reg) == 1
    assert "daos.rpc.count" in reg


def test_registry_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x.ops")
    with pytest.raises(ConfigError):
        reg.gauge("x.ops")
    with pytest.raises(ConfigError):
        reg.histogram("x.ops")


def test_counter_monotonic():
    c = Counter("c")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ConfigError):
        c.inc(-1)


def test_gauge_peak_tracking():
    g = Gauge("g")
    g.set(10)
    g.set(4)
    assert g.value == 4 and g.peak == 10
    g.set_max(3)
    assert g.value == 4  # not a new high-water mark
    g.set_max(20)
    assert g.value == 20 and g.peak == 20


def test_histogram_bucketing():
    h = Histogram("h", bounds=(1.0, 10.0, 100.0))
    for v in (0.5, 1.0, 5.0, 50.0, 500.0):
        h.observe(v)
    assert h.counts == [2, 1, 1, 1]  # <=1, <=10, <=100, overflow
    assert h.count == 5
    assert h.mean == pytest.approx(556.5 / 5)
    assert h.vmin == 0.5 and h.vmax == 500.0
    assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
    assert h.quantile(1.0) == pytest.approx(500.0)
    with pytest.raises(ConfigError):
        h.quantile(1.5)
    with pytest.raises(ConfigError):
        Histogram("empty", bounds=())


def test_registry_reset_keeps_catalogue_and_references():
    reg = MetricsRegistry()
    c = reg.counter("a.ops")
    g = reg.gauge("a.depth")
    h = reg.histogram("a.lat", bounds=(1.0,))
    c.inc(5)
    g.set(3)
    h.observe(0.5)
    reg.reset()
    assert reg.counter("a.ops") is c  # cached references stay valid
    assert c.value == 0 and g.value == 0 and g.peak == 0 and h.count == 0
    c.inc()
    assert reg.counter("a.ops").value == 1


def test_registry_by_layer_and_snapshot():
    reg = MetricsRegistry()
    reg.counter("daos.rpc.count").inc(7)
    reg.counter("daos.bytes.written", unit="B").inc(100)
    reg.gauge("sim.heap_peak").set(42)
    reg.histogram("flownet.flow.duration", bounds=(1.0,)).observe(0.5)
    layers = reg.by_layer()
    assert set(layers) == {"daos", "sim", "flownet"}
    assert len(layers["daos"]) == 2
    snap = reg.snapshot()
    assert snap["daos.rpc.count"] == {"kind": "counter", "unit": "", "value": 7.0}
    assert snap["sim.heap_peak"]["peak"] == 42.0
    assert snap["flownet.flow.duration"]["buckets"] == {"1.0": 1, "+inf": 0}
    json.dumps(snap)  # plain data, JSON-safe
    table = reg.render_table()
    assert "daos.rpc.count" in table and "counter" in table


# -- tracer ----------------------------------------------------------------------


def test_span_nesting_and_sim_time():
    sim = Simulator()
    tracer = Tracer()
    tracer.set_context(pid=0, clock=lambda: sim.now)

    def proc():
        with tracer.span("workload.write", cat="workload", tid=100) as outer:
            yield sim.timeout(1.0)
            with tracer.span("daos.arr-write", cat="daos", tid=100) as inner:
                yield sim.timeout(2.0)
        assert inner.parent_id == outer.span_id

    sim.process(proc())
    sim.run()
    outer, inner = tracer.spans
    assert outer.start == 0.0 and outer.end == pytest.approx(3.0)
    assert inner.start == pytest.approx(1.0) and inner.end == pytest.approx(3.0)
    assert outer.parent_id is None
    assert tracer.children_of(outer) == [inner]
    assert tracer.categories() == ["daos", "workload"]


def test_span_lanes_do_not_cross_parent():
    tracer = Tracer()
    a = tracer.begin("a", tid=1)
    b = tracer.begin("b", tid=2)  # different lane: not a child of a
    assert b.parent_id is None
    tracer.finish(b)
    tracer.finish(a)
    assert len(tracer.finished) == 2


def test_record_known_interval_nests_under_open_span():
    tracer = Tracer()
    outer = tracer.begin("outer", tid=0)
    flow = tracer.record("flow", cat="flownet", start=0.5, end=1.5, tid=0)
    assert flow.parent_id == outer.span_id
    assert flow.duration == pytest.approx(1.0)
    tracer.finish(outer)


def test_set_context_bumps_pid_and_clears_stacks():
    tracer = Tracer()
    tracer.begin("left-open", tid=0)
    tracer.set_context(pid=1, clock=lambda: 9.0)
    span = tracer.begin("fresh", tid=0)
    assert span.pid == 1
    assert span.parent_id is None  # stale stack was cleared
    assert span.start == 9.0


def test_top_spans_aggregates_by_name():
    tracer = Tracer()
    tracer.record("big", "c", 0.0, 10.0)
    tracer.record("small", "c", 0.0, 1.0)
    tracer.record("small", "c", 1.0, 2.0)
    top = tracer.top_spans(2)
    assert top[0] == ("big", 1, pytest.approx(10.0))
    assert top[1] == ("small", 2, pytest.approx(2.0))


# -- exporters -------------------------------------------------------------------


def test_chrome_trace_event_shape():
    tracer = Tracer()
    tracer.label_thread(100, "cli0")
    tracer.record("daos.arr-write", "daos", start=0.25, end=0.75, tid=100)
    events = chrome_trace_events(tracer)
    slices = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert len(slices) == 1
    ev = slices[0]
    assert ev["name"] == "daos.arr-write"
    assert ev["ts"] == pytest.approx(0.25e6)  # sim seconds -> microseconds
    assert ev["dur"] == pytest.approx(0.5e6)
    assert ev["pid"] == 0 and ev["tid"] == 100
    assert {"sim", "flownet", "cli0"} <= {
        m["args"]["name"] for m in metas if m["name"] == "thread_name"
    }


def test_export_chrome_trace_multi_tracer_pid_offsets(tmp_path):
    t1, t2 = Tracer(), Tracer()
    t1.record("a", "c", 0.0, 1.0)
    t2.record("b", "c", 0.0, 1.0)
    out = tmp_path / "trace.json"
    n = export_chrome_trace(str(out), [("F1", t1), ("F2", t2)])
    assert n == 2
    doc = json.loads(out.read_text())
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert {e["pid"] for e in slices} == {0, 1}  # offset per figure
    labels = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert labels == {"F1 0", "F2 0"}


def test_export_json_spans_and_metrics(tmp_path):
    tracer = Tracer()
    tracer.record("x", "c", 0.0, 2.0)
    reg = MetricsRegistry()
    reg.counter("a.ops").inc(3)
    out = tmp_path / "obs.json"
    export_json(str(out), tracer, reg)
    doc = json.loads(out.read_text())
    assert doc["spans"][0]["name"] == "x"
    assert doc["metrics"]["a.ops"]["value"] == 3.0


# -- ambient context -------------------------------------------------------------


def test_activated_context_restores_previous():
    assert current() is None
    o = Observability()
    with activated(o):
        assert current() is o
        with activated(None):
            assert current() is None
        assert current() is o
    assert current() is None


def test_cluster_binds_active_observability():
    from repro.hardware.cluster import Cluster

    o = Observability()
    with activated(o):
        cluster = Cluster(n_servers=1, n_clients=1, seed=0)
    assert cluster.obs is o
    assert cluster.sim.metrics is o.registry
    assert len(cluster.net.on_transfer) == 1
    # outside the context new clusters are unobserved
    plain = Cluster(n_servers=1, n_clients=1, seed=0)
    assert plain.obs is None
    assert plain.sim.metrics is None
    assert plain.net.on_transfer == []


# -- end to end ------------------------------------------------------------------


def small_spec(**kwargs):
    from repro.harness.experiment import PointSpec

    defaults = dict(
        workload="ior", store="daos", api="DFS",
        n_servers=2, n_client_nodes=2, ppn=4, ops_per_process=8,
    )
    defaults.update(kwargs)
    return PointSpec(**defaults)


def test_observed_run_collects_all_layers():
    from repro.harness.experiment import run_point

    o = Observability()
    run_point(small_spec(), reps=2, obs=o)
    assert {"sim", "flownet", "daos", "workload"} <= set(o.tracer.categories())
    reg = o.registry
    assert reg.counter("sim.events_executed").value > 0
    assert reg.gauge("sim.heap_peak").peak > 0
    assert reg.counter("daos.rpc.count").value > 0
    assert reg.counter("daos.bytes.written").value > 0
    started = reg.counter("flownet.flows.started").value
    assert started > 0
    assert reg.counter("flownet.flows.completed").value == started
    assert reg.counter("workload.bytes").value > 0
    # reps render as separate trace processes
    assert {s.pid for s in o.tracer.spans} == {0, 1}
    # finalize_run aggregated link utilisation
    hottest = o.hottest_links(5)
    assert hottest and all(0.0 <= u <= 1.0 + 1e-9 for _, u in hottest)


def test_instrumentation_is_zero_overhead_on_results():
    """The acceptance criterion: identical numbers with and without obs —
    including the timeline sampler and flow-binding tracker, which ride
    the time probe / allocation bookkeeping and must never perturb the
    event schedule."""
    from repro.harness.experiment import run_point
    from repro.obs import TimelineConfig

    plain = run_point(small_spec(), reps=2, base_seed=3)
    observed = run_point(small_spec(), reps=2, base_seed=3, obs=Observability())
    sampled = run_point(
        small_spec(), reps=2, base_seed=3,
        obs=Observability(timeline=TimelineConfig(interval=0.001)),
    )
    for other in (observed, sampled):
        assert plain.write_bw == other.write_bw
        assert plain.read_bw == other.read_bw
        assert plain.write_iops == other.write_iops
        assert plain.read_iops == other.read_iops


def test_bottleneck_summary_renders():
    from repro.harness.experiment import run_point
    from repro.obs.report import render_bottlenecks

    o = Observability()
    run_point(small_spec(), reps=1, obs=o)
    text = render_bottlenecks(o)
    assert "top spans" in text
    assert "hottest links" in text
    assert "per-layer counters" in text
    assert "daos" in text
    empty = render_bottlenecks(Observability())
    assert "no instrumentation data" in empty


def test_observability_reset():
    from repro.harness.experiment import run_point

    o = Observability()
    run_point(small_spec(), reps=1, obs=o)
    assert o.tracer.spans and o.link_stats
    names_before = o.registry.names()
    o.reset()
    assert o.tracer.spans == [] and o.link_stats == {}
    assert o.registry.names() == names_before
    assert o.registry.counter("workload.bytes").value == 0


def test_reset_rearms_run_index_and_binding():
    """Regression: a reused Observability must start a clean trace —
    run_index back to -1, binding machinery re-armed, so the next bound
    cluster records pid 0 again."""
    from repro.harness.experiment import run_point
    from repro.obs import TimelineConfig

    o = Observability(timeline=TimelineConfig(interval=0.01))
    run_point(small_spec(), reps=2, obs=o)
    assert o.run_index == 1 and len(o.timelines) == 2
    o.reset()
    assert o.run_index == -1
    assert o.timelines == []
    assert o._bound is None and o._finalized
    run_point(small_spec(), reps=1, obs=o)
    o.finalize()
    assert {s.pid for s in o.tracer.spans} == {0}
    assert len(o.timelines) == 1


def test_hottest_links_aggregates_across_clusters():
    """Two bound clusters: link stats accumulate across both, and a
    bound-but-never-run cluster (zero elapsed) contributes nothing."""
    from repro.hardware.cluster import Cluster

    o = Observability()
    for seed in (0, 1):
        with activated(o):
            cluster = Cluster(n_servers=1, n_clients=1, seed=seed)
        src = cluster.net.add_link("x.src", 100.0)
        dst = cluster.net.add_link("x.dst", 200.0)
        cluster.net.transfer(100.0, [(src, 1.0), (dst, 1.0)], name="t")
        cluster.sim.run()
        o.finalize_run(cluster)
    busy, denom = o.link_stats["x.src"]
    assert denom == pytest.approx(2 * 100.0 * 1.0)  # two 1s runs
    assert busy == pytest.approx(2 * 100.0)
    hottest = dict(o.hottest_links(10))
    assert hottest["x.src"] == pytest.approx(1.0)
    assert hottest["x.dst"] == pytest.approx(0.5)
    # zero-elapsed run: bound, finalized, but no simulation ran
    stats_before = {k: list(v) for k, v in o.link_stats.items()}
    with activated(o):
        idle = Cluster(n_servers=1, n_clients=1, seed=2)
    o.finalize_run(idle)
    assert {k: list(v) for k, v in o.link_stats.items()} == stats_before


def test_render_table_histogram_percentiles():
    reg = MetricsRegistry()
    h = reg.histogram("a.lat", unit="s", bounds=(1.0, 10.0, 100.0))
    for v in (0.5, 2.0, 5.0, 50.0):
        h.observe(v)
    table = reg.render_table()
    assert "p50=" in table and "p99=" in table


def test_simulator_metrics_hook_counts_events():
    sim = Simulator()
    reg = MetricsRegistry()
    sim.metrics = reg

    def proc():
        for _ in range(5):
            yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    assert reg.counter("sim.events_executed").value >= 5
    assert reg.gauge("sim.heap_peak").peak >= 1
