"""FDB: schema, facade, and all three backends."""

import pytest

from repro.ceph import CephCluster, RadosClient
from repro.daos import DaosClient, Pool
from repro.errors import InvalidArgumentError, NotFoundError
from repro.fdb import (
    FDB,
    FdbDaosBackend,
    FdbPosixBackend,
    FdbRadosBackend,
    key_sequence,
    make_key,
)
from repro.hardware import Cluster
from repro.lustre import LustreClient, LustreFilesystem
from repro.units import KiB, MiB


def drive(cluster, gen):
    proc = cluster.sim.process(gen)
    cluster.sim.run()
    return proc.result


# -- schema -------------------------------------------------------------------


def test_make_key_canonical_order():
    key = make_key(param=130, step=0, date=20240101, time="0000", stream="oper", class_="od")
    assert str(key) == "class=od,stream=oper,date=20240101,time=0000,step=0,param=130"


def test_key_missing_required_rejected():
    with pytest.raises(InvalidArgumentError):
        make_key(class_="od", stream="oper")


def test_key_unknown_attribute_rejected():
    with pytest.raises(InvalidArgumentError):
        make_key(class_="od", stream="oper", date=1, time=0, step=0, param=1, banana=1)


def test_key_index_group_prefix():
    key = make_key(
        class_="od", stream="enfo", expver="0001", date=20240101, time="0000",
        step=6, param=130,
    )
    assert key.index_group() == "class=od,stream=enfo,expver=0001,date=20240101,time=0000"


def test_key_sequence_unique_and_sized():
    keys = list(key_sequence(100, member=3))
    assert len(keys) == 100
    assert len(set(keys)) == 100
    other = set(key_sequence(100, member=4))
    assert not other & set(keys)  # members are disjoint


# -- backends -------------------------------------------------------------------


def daos_env():
    cluster = Cluster(n_servers=4, n_clients=1, seed=0)
    pool = Pool(cluster)
    client = DaosClient(cluster, pool, cluster.clients[0])
    return cluster, FdbDaosBackend(client, proc_id=0)


def lustre_env():
    cluster = Cluster(n_servers=4, n_clients=1, seed=0)
    fs = LustreFilesystem(cluster)
    client = LustreClient(fs, cluster.clients[0])
    backend = FdbPosixBackend(
        client, proc_id=0, buffer_size=256 * KiB,
        create_kwargs={"stripe_count": 8, "stripe_size": 8 * MiB},
    )
    return cluster, backend


def ceph_env():
    cluster = Cluster(n_servers=4, n_clients=1, seed=0)
    ceph = CephCluster(cluster)
    client = RadosClient(ceph, cluster.clients[0])
    return cluster, FdbRadosBackend(client, proc_id=0)


@pytest.mark.parametrize("env_builder", [daos_env, lustre_env, ceph_env])
def test_archive_retrieve_roundtrip(env_builder):
    cluster, backend = env_builder()
    fdb = FDB(backend)
    keys = list(key_sequence(8))
    payloads = {k: bytes([i]) * (64 * KiB) for i, k in enumerate(keys)}

    def flow():
        yield from fdb.open(writer=True)
        for k in keys:
            yield from fdb.archive(k, data=payloads[k])
        yield from fdb.flush()
        out = {}
        for k in keys:
            out[k] = yield from fdb.retrieve(k)
        yield from fdb.close()
        return out

    out = drive(cluster, flow())
    assert out == payloads


@pytest.mark.parametrize("env_builder", [daos_env, lustre_env, ceph_env])
def test_retrieve_unknown_key(env_builder):
    cluster, backend = env_builder()
    fdb = FDB(backend)

    def flow():
        yield from fdb.open(writer=True)
        yield from fdb.retrieve(next(iter(key_sequence(1, member=99))))

    with pytest.raises(NotFoundError):
        drive(cluster, flow())


def test_facade_guards():
    cluster, backend = daos_env()
    fdb = FDB(backend)
    with pytest.raises(InvalidArgumentError):
        next(fdb.archive(next(iter(key_sequence(1)))))  # session not open

    def flow():
        yield from fdb.open(writer=False)
        yield from fdb.archive(next(iter(key_sequence(1))), nbytes=10)

    with pytest.raises(InvalidArgumentError):
        drive(cluster, flow())


def test_daos_backend_ten_kv_ops_per_field():
    """Paper: ~10 KV operations per field archived."""
    b = FdbDaosBackend
    assert b.ROOT_PUTS + b.CATALOGUE_PUTS + b.INDEX_PUTS == 10
    assert b.ROOT_GETS + b.CATALOGUE_GETS + b.INDEX_GETS == 10


def test_daos_backend_counts_kv_traffic():
    cluster, backend = daos_env()
    fdb = FDB(backend)

    def flow():
        yield from fdb.open(writer=True)
        yield from fdb.archive(next(iter(key_sequence(1))), nbytes=MiB)
        return None

    drive(cluster, flow())
    # the shared + exclusive KVs each hold entries now
    assert len(backend.root_kv) >= 1
    assert len(backend.catalogue_kv) >= 1
    assert len(backend.index_kv) >= 8


def test_posix_backend_buffers_until_threshold():
    cluster, backend = lustre_env()
    fdb = FDB(backend)
    keys = list(key_sequence(4))

    def flow():
        yield from fdb.open(writer=True)
        # 3 x 64 KiB < 256 KiB buffer: nothing hits the data file yet
        for k in keys[:3]:
            yield from fdb.archive(k, data=b"f" * (64 * KiB))
        size_before = backend._data_fh.inode.size
        yield from fdb.archive(keys[3], data=b"f" * (64 * KiB))
        size_after = backend._data_fh.inode.size
        return size_before, size_after

    size_before, size_after = drive(cluster, flow())
    assert size_before == 0  # still buffered in client memory
    assert size_after == 4 * 64 * KiB  # one large flush wrote everything


def test_posix_backend_reads_reopen_files():
    """Every retrieve opens (and closes) index + data files: 2 opens,
    i.e. ~4 MDS requests per field."""
    cluster, backend = lustre_env()
    fdb = FDB(backend)
    keys = list(key_sequence(5))
    mds_link = backend.client.fs.mds.link

    def flow():
        yield from fdb.open(writer=True)
        for k in keys:
            yield from fdb.archive(k, data=b"x" * (64 * KiB))
        yield from fdb.flush()
        before = mds_link.busy_integral
        for k in keys:
            yield from fdb.retrieve(k)
        return mds_link.busy_integral - before

    mds_ops = drive(cluster, flow())
    assert mds_ops == pytest.approx(5 * 4, rel=0.01)  # 4 MDS requests/field


def test_rados_backend_object_per_field():
    cluster, backend = ceph_env()
    fdb = FDB(backend)
    keys = list(key_sequence(6))

    def flow():
        yield from fdb.open(writer=True)
        for k in keys:
            yield from fdb.archive(k, nbytes=MiB)
        return None

    drive(cluster, flow())
    data_objects = [n for n in backend.pool.object_sizes if n.startswith("fdb.0.")]
    assert len(data_objects) == 6


def test_rados_backend_objects_spread_over_osds():
    cluster, backend = ceph_env()
    fdb = FDB(backend)
    keys = list(key_sequence(64))

    def flow():
        yield from fdb.open(writer=True)
        for k in keys:
            yield from fdb.archive(k, nbytes=4 * KiB)
        return None

    drive(cluster, flow())
    primaries = {
        backend.pool.pgmap.primary(n).index
        for n in backend.pool.object_sizes
        if n.startswith("fdb.0.")
    }
    assert len(primaries) > 16  # 64 objects land on many of the 64 OSDs


def test_fdb_close_flushes_pending_writes():
    cluster, backend = lustre_env()
    fdb = FDB(backend)
    key = next(iter(key_sequence(1)))

    def flow():
        yield from fdb.open(writer=True)
        yield from fdb.archive(key, data=b"z" * (16 * KiB))
        yield from fdb.close()
        return backend._index[key.canonical()][1]

    assert drive(cluster, flow()) == 16 * KiB


def test_readonly_session_close_does_not_flush():
    cluster, backend = daos_env()
    fdb = FDB(backend)

    def flow():
        yield from fdb.open(writer=False)
        yield from fdb.close()
        return fdb._session_open

    assert drive(cluster, flow()) is False


def test_archive_requires_payload_info():
    cluster, backend = daos_env()
    fdb = FDB(backend)

    def flow():
        yield from fdb.open(writer=True)
        yield from fdb.archive(next(iter(key_sequence(1))))

    with pytest.raises(InvalidArgumentError):
        drive(cluster, flow())


def test_counters_track_operations():
    cluster, backend = daos_env()
    fdb = FDB(backend)
    keys = list(key_sequence(3))

    def flow():
        yield from fdb.open(writer=True)
        for k in keys:
            yield from fdb.archive(k, nbytes=1024)
        for k in keys[:2]:
            yield from fdb.retrieve(k)
        return fdb.archived, fdb.retrieved

    assert drive(cluster, flow()) == (3, 2)
