"""Fault injection: plan grammar, controller, client retry, degraded
figures — plus the chaos property the redundancy classes must satisfy:
no data loss and byte-identical reads under any single-target failure.
"""

import math

import pytest

from repro.daos import DaosArray, Pool
from repro.daos.objclass import ObjectClass
from repro.daos.rebuild import run_rebuild
from repro.errors import (
    ConfigError,
    DataLossError,
    DegradedError,
    UnavailableError,
)
from repro.faults import (
    FaultController,
    FaultEvent,
    FaultPlan,
    RetryPolicy,
    parse_fault_plan,
)
from repro.hardware import Cluster
from repro.harness.experiment import (
    PROFILE_WINDOWS,
    PointSpec,
    run_point,
    spec_token,
)
from repro.harness.figures import plan_figure
from repro.harness.plan import with_faults
from repro.lustre.fs import LustreFilesystem
from repro.sim.primitives import Gate
from repro.units import MiB
from repro.workloads.common import DaosEnv


def daos_env(n_servers=4, seed=7, retry=None):
    cluster = Cluster(n_servers=n_servers, n_clients=1, seed=seed)
    return DaosEnv(cluster, retry_policy=retry)


def make_array(pool, oc, chunk_size=MiB, label="c0") -> DaosArray:
    cont = pool.create_container(label)
    oid = cont.alloc_oid()
    arr = DaosArray(cont, oid, ObjectClass.parse(oc), chunk_size=chunk_size)
    cont.register(oid, arr)
    return arr


PAYLOAD = bytes(range(256)) * (MiB // 256)


# -- plan grammar --------------------------------------------------------------


def test_plan_round_trips():
    text = (
        "target@read+0.02:5,rebuild;link@1:srv0.nic.tx,factor=0.5;"
        "ssd@0.5:srv1.ssd2,recover=0.25"
    )
    plan = parse_fault_plan(text)
    assert len(plan) == 3
    assert plan.wants_rebuild
    assert parse_fault_plan(plan.spec()) == plan
    assert plan.spec() == text


def test_plan_canonicalizes():
    plan = parse_fault_plan(" target@0.50:3 , recover=1.0 ;  ")
    assert plan.spec() == "target@0.5:3,recover=1"
    assert plan.events[0].phase is None


def test_plan_phase_anchor_parsed():
    (event,) = parse_fault_plan("server@write+0.1:1,recover=0.5,rebuild").events
    assert event == FaultEvent(
        kind="server", at=0.1, arg="1", phase="write", recover=0.5, rebuild=True
    )


def test_empty_plan_is_no_faults():
    plan = parse_fault_plan("  ")
    assert not plan
    assert plan.spec() == ""
    assert not FaultPlan()


@pytest.mark.parametrize("bad", [
    "disk@1:0",             # unknown kind
    "target@-1:0",          # negative time
    "target@1",             # missing argument
    "target@abc:0",         # bad time
    "target@1:abc",         # non-integer index
    "link@1:srv0.nic.tx,rebuild",   # rebuild on a link
    "target@1:0,share=0",   # share out of (0, 1]
    "link@1:x,factor=1.5",  # factor out of [0, 1]
    "ssd@1:nodot",          # ssd wants srvN.ssdM
    "target@1:0,boom=1",    # unknown option
    "target@1:0,recover=0",  # recover must be positive
])
def test_plan_rejects(bad):
    with pytest.raises(ConfigError):
        parse_fault_plan(bad)


# -- controller ----------------------------------------------------------------


def test_controller_kills_and_recovers_target():
    env = daos_env()
    controller = FaultController(env, "target@0.1:3,recover=0.2")
    assert env.cluster.fault_controller is controller
    sim = env.cluster.sim
    version0 = env.pool.map_version
    seen = []

    def probe():
        for wait in (0.05, 0.1, 0.2):  # t = 0.05, 0.15, 0.35
            yield sim.timeout(wait)
            seen.append(env.pool.ring[3].alive)

    sim.process(probe())
    sim.run()
    assert seen == [True, False, True]
    assert (controller.injected, controller.recovered) == (1, 1)
    assert env.pool.map_version == version0 + 2


def test_controller_phase_anchored_event():
    env = daos_env()
    controller = FaultController(env, "target@read+0.1:0")
    sim = env.cluster.sim
    seen = []

    def workload():
        yield sim.timeout(0.2)
        controller.mark_phase("read")
        controller.mark_phase("read")  # idempotent
        yield sim.timeout(0.05)
        seen.append(env.pool.ring[0].alive)  # t = 0.25: not yet
        yield sim.timeout(0.1)
        seen.append(env.pool.ring[0].alive)  # t = 0.35: dead

    sim.process(workload())
    sim.run()
    assert seen == [True, False]


def test_controller_event_on_unmarked_phase_never_fires():
    env = daos_env()
    controller = FaultController(env, "target@write+0.01:0")
    env.cluster.sim.run()
    assert controller.injected == 0
    assert env.pool.ring[0].alive


def test_controller_link_degrade_and_partition():
    env = daos_env()
    net = env.cluster.net
    cap = net.link("srv0.nic.tx").capacity
    FaultController(
        env,
        "link@0.1:srv0.nic.tx,factor=0.5,recover=0.2;"
        "link@0.1:srv1.nic.tx,factor=0",
    )
    sim = env.cluster.sim
    seen = []

    def probe():
        yield sim.timeout(0.2)
        seen.append(net.link("srv0.nic.tx").capacity)
        seen.append(net.link("srv1.nic.tx").capacity)
        yield sim.timeout(0.2)
        seen.append(net.link("srv0.nic.tx").capacity)

    sim.process(probe())
    sim.run()
    assert seen[0] == pytest.approx(cap * 0.5)
    assert seen[1] == pytest.approx(cap * 1e-6)
    assert seen[2] == pytest.approx(cap)


def test_controller_gate_closes_and_reopens():
    env = daos_env()
    controller = FaultController(env, "gate@0.1:ckpt,recover=0.2")
    gate = Gate(env.cluster.sim, is_open=True, name="ckpt")
    controller.register_gate("ckpt", gate)
    sim = env.cluster.sim
    seen = []

    def probe():
        yield sim.timeout(0.2)
        seen.append(gate.is_open)
        yield gate.passage()  # blocked until recovery opens the gate
        seen.append(sim.now)

    sim.process(probe())
    sim.run()
    assert seen[0] is False
    assert seen[1] == pytest.approx(0.3)


def test_controller_unknown_link_and_gate_raise():
    env = daos_env()
    FaultController(env, "link@0:nope")
    with pytest.raises(ConfigError):
        env.cluster.sim.run()
    env = daos_env()
    FaultController(env, "gate@0:unregistered")
    with pytest.raises(ConfigError):
        env.cluster.sim.run()


def test_controller_server_crash_takes_all_its_targets():
    env = daos_env()
    FaultController(env, "server@0.1:1")
    env.cluster.sim.run()
    victim = env.cluster.servers[1]
    for target in env.pool.ring:
        assert target.alive == (target.engine.node is not victim)


def test_controller_ssd_fault_fails_colocated_target():
    env = daos_env()
    FaultController(env, "ssd@0.1:srv0.ssd2")
    env.cluster.sim.run()
    device = env.cluster.servers[0].devices[2]
    assert not device.alive
    colocated = [t for t in env.pool.ring if t.device is device]
    assert len(colocated) == 1 and not colocated[0].alive


def test_controller_rebuild_restores_redundancy():
    env = daos_env()
    arr = make_array(env.pool, "RP_2")
    arr.write(0, PAYLOAD)
    victim = arr.groups[0][0]
    controller = FaultController(
        env, f"target@0.1:{victim.global_index},rebuild"
    )
    env.cluster.sim.run()
    assert len(controller.reports) == 1
    assert controller.objects_lost == []
    assert not victim.alive
    # post-rebuild layout serves reads without the victim
    data, charges = arr.read(0, len(PAYLOAD))
    assert data == PAYLOAD
    assert victim not in charges


# -- retry policy --------------------------------------------------------------


@pytest.mark.parametrize("kwargs", [
    dict(max_attempts=0),
    dict(op_timeout=0.0),
    dict(backoff_base=0.0),
    dict(backoff_factor=0.5),
    dict(jitter=-0.1),
])
def test_retry_policy_rejects(kwargs):
    with pytest.raises(ConfigError):
        RetryPolicy(**kwargs)


def test_backoff_exponential_and_deterministic():
    policy = RetryPolicy(backoff_base=1e-3, backoff_factor=2.0, jitter=0.0)
    assert [policy.delay(n) for n in (1, 2, 3)] == [1e-3, 2e-3, 4e-3]
    jittered = RetryPolicy(jitter=0.2)
    a = Cluster(n_servers=2, n_clients=1, seed=9).rng.stream("cli0.retry")
    b = Cluster(n_servers=2, n_clients=1, seed=9).rng.stream("cli0.retry")
    assert [jittered.delay(n, a) for n in (1, 2)] == [
        jittered.delay(n, b) for n in (1, 2)
    ]


def test_retry_bridges_transient_outage():
    env = daos_env(
        retry=RetryPolicy(max_attempts=8, backoff_base=0.05, jitter=0.0)
    )
    client = env.client(env.cluster.clients[0])
    sim = env.cluster.sim

    def scenario():
        cont = yield from client.create_container("c")
        kv = yield from client.create_kv(cont, oc="S1")
        victim = kv.groups[0][0]
        env.pool.fail_target(victim.global_index)
        yield from client.kv_put(kv, "k", b"v")  # retried until restore
        return (yield from client.kv_get(kv, "k"))

    def medic():
        yield sim.timeout(0.12)
        # kv group membership is fixed; restore the same target
        env.pool.restore_target(env.pool.ring.index(
            next(t for t in env.pool.ring if not t.alive)
        ))

    proc = sim.process(scenario())
    sim.process(medic())
    sim.run()
    assert proc.result == b"v"
    assert client.retries >= 2


def test_retry_exhausts_with_unavailable():
    env = daos_env(
        retry=RetryPolicy(max_attempts=2, backoff_base=0.01, jitter=0.0)
    )
    client = env.client(env.cluster.clients[0])

    def scenario():
        cont = yield from client.create_container("c")
        kv = yield from client.create_kv(cont, oc="S1")
        env.pool.fail_target(kv.groups[0][0].global_index)
        yield from client.kv_put(kv, "k", b"v")

    proc = env.cluster.sim.process(scenario())
    with pytest.raises(UnavailableError):
        env.cluster.sim.run()
        _ = proc.result
    assert client.retries == 1


def test_data_loss_is_not_retried():
    env = daos_env(retry=RetryPolicy(max_attempts=5, backoff_base=0.01))
    client = env.client(env.cluster.clients[0])

    def scenario():
        cont = yield from client.create_container("c")
        kv = yield from client.create_kv(cont, oc="S1")
        yield from client.kv_put(kv, "k", b"v")
        env.pool.fail_target(kv.groups[0][0].global_index)
        yield from client.kv_get(kv, "k")

    env.cluster.sim.process(scenario())
    with pytest.raises(DataLossError):
        env.cluster.sim.run()
    assert client.retries == 0


def test_op_timeout_interrupts_and_retries():
    policy = RetryPolicy(
        max_attempts=2, op_timeout=0.05, backoff_base=0.01, jitter=0.0
    )
    env = daos_env(retry=policy)
    client = env.client(env.cluster.clients[0])
    sim = env.cluster.sim

    def hang(opx):
        yield sim.signal(name="never-fires")

    def scenario():
        yield from client._with_retry(hang, "hang")

    sim.process(scenario())
    with pytest.raises(UnavailableError, match="timed out"):
        sim.run()
    assert client.retries == 1
    # attempt 1 (0.05) + backoff (0.01) + attempt 2 (0.05)
    assert math.isclose(sim.now, 0.11)


# -- chaos property: single failures are survivable iff redundant --------------


@pytest.mark.parametrize("oc", ["RP_2", "EC_2P1"])
def test_single_target_failure_reads_byte_identical(oc):
    env = daos_env()
    client = env.client(env.cluster.clients[0])
    arr = make_array(env.pool, oc)
    arr.write(0, PAYLOAD)
    group = arr.groups[0]

    def scenario():
        for victim in group:
            env.pool.fail_target(victim.global_index)
            data = yield from client.array_read(arr, 0, len(PAYLOAD))
            assert data == PAYLOAD
            # restore comes back wiped (device replacement): re-protect
            env.pool.restore_target(victim.global_index)
            arr.write(0, PAYLOAD)

    proc = env.cluster.sim.process(scenario())
    env.cluster.sim.run()
    assert proc.result is None  # scenario's asserts all passed
    # replication skipped a dead primary / EC reconstructed from parity
    assert client.failed_over >= 1


def test_sx_single_failure_loses_data():
    env = daos_env()
    client = env.client(env.cluster.clients[0])
    arr = make_array(env.pool, "S1")
    arr.write(0, PAYLOAD)
    env.pool.fail_target(arr.groups[0][0].global_index)

    def scenario():
        yield from client.array_read(arr, 0, len(PAYLOAD))

    env.cluster.sim.process(scenario())
    with pytest.raises(DataLossError, match="no live replica"):
        env.cluster.sim.run()


@pytest.mark.parametrize("oc,kills", [("RP_2", 2), ("EC_2P1", 2)])
def test_double_failure_raises_clean_data_loss(oc, kills):
    env = daos_env()
    client = env.client(env.cluster.clients[0])
    arr = make_array(env.pool, oc)
    arr.write(0, PAYLOAD)
    for victim in arr.groups[0][:kills]:
        env.pool.fail_target(victim.global_index)

    def scenario():
        yield from client.array_read(arr, 0, len(PAYLOAD))

    env.cluster.sim.process(scenario())
    with pytest.raises(DataLossError, match="chunk"):
        env.cluster.sim.run()
    assert client.retries == 0  # data loss is terminal, never retried


# -- rebuild validation (satellite) --------------------------------------------


@pytest.mark.parametrize("share", [0.0, -0.5, 1.5])
def test_rebuild_rejects_bad_bandwidth_share(share):
    env = daos_env()
    gen = run_rebuild(env.pool, env.pool.ring[0], bandwidth_share=share)
    with pytest.raises(ConfigError):
        next(gen)


# -- Lustre OST degraded mode (satellite) --------------------------------------


def test_ost_fail_raises_degraded_until_restore():
    cluster = Cluster(n_servers=2, n_clients=1, seed=3)
    fs = LustreFilesystem(cluster)
    ost = fs.osts[0]
    ost.store((1, 0))[0] = b"x"
    ost.fail()
    with pytest.raises(DegradedError):
        ost.store((1, 0))
    with pytest.raises(DegradedError):
        ost.lookup((1, 0))
    ost.drop((1, 0))  # unlink over a dead OST stays a functional no-op
    ost.restore()
    assert ost.lookup((1, 0)) is None  # device replacement: objects gone


# -- harness integration -------------------------------------------------------


def _small_spec(**kwargs) -> PointSpec:
    base = dict(
        workload="ior", store="daos", api="DAOS", n_servers=2,
        n_client_nodes=1, ppn=2, ops_per_process=24, op_size=MiB,
        mode="exact", object_class="RP_2GX",
    )
    base.update(kwargs)
    return PointSpec(**base)


def test_spec_token_unchanged_without_faults():
    token = spec_token(_small_spec())
    assert "faults" not in token
    faulted = spec_token(_small_spec(faults="target@0.1:0"))
    assert "faults='target@0.1:0'" in faulted


def test_spec_canonicalizes_faults():
    spec = _small_spec(faults=" target@0.50:3 , recover=1.0 ")
    assert spec.faults == "target@0.5:3,recover=1"


def test_spec_rejects_faults_on_rawio():
    with pytest.raises(ConfigError):
        PointSpec(
            workload="rawio", store="daos", api="dd",
            n_servers=1, n_client_nodes=1, faults="target@0.1:0",
        )


def test_run_point_with_faults_deterministic():
    spec = _small_spec(faults="target@read+0.01:1,rebuild")
    a = run_point(spec, reps=1)
    b = run_point(spec, reps=1)
    assert a.read_bw == b.read_bw
    assert a.read_windows == b.read_windows
    assert len(a.read_windows) == PROFILE_WINDOWS
    assert a.lost_ops == (0.0, 0.0)  # RP_2 rides through


def test_run_point_sx_faulted_loses_ops():
    result = run_point(
        _small_spec(object_class="SX", faults="target@read+0.01:1"), reps=1
    )
    assert result.lost_ops[0] > 0


def test_with_faults_overlays_every_storage_point():
    plan = plan_figure("RP2")
    overlay = with_faults(plan, "target@0.1:0")
    assert all(s.faults == "target@0.1:0" for s in overlay.specs)
    assert with_faults(plan, "") is plan
    hw = with_faults(plan_figure("HW"), "target@0.1:0")
    assert all(s.faults == "" for s in hw.specs)
