"""Discrete-event kernel: scheduling, processes, signals, combinators."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import AllOf, AnyOf, Interrupt, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(2.0, log.append, "b")
    sim.schedule(1.0, log.append, "a")
    sim.schedule(3.0, log.append, "c")
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_fifo_by_schedule_order():
    sim = Simulator()
    log = []
    sim.schedule(1.0, log.append, 1)
    sim.schedule(1.0, log.append, 2)
    sim.schedule(1.0, log.append, 3)
    sim.run()
    assert log == [1, 2, 3]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    log = []
    handle = sim.schedule(1.0, log.append, "x")
    handle.cancel()
    sim.run()
    assert log == []


def test_run_until_stops_clock():
    sim = Simulator()
    log = []
    sim.schedule(5.0, log.append, "late")
    sim.run(until=2.0)
    assert sim.now == 2.0
    assert log == []
    sim.run()
    assert log == ["late"]


def test_peek_skips_cancelled():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    assert sim.peek() == 2.0


def test_process_timeout_and_return_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.5)
        return sim.now

    proc = sim.process(worker())
    sim.run()
    assert proc.result == 1.5


def test_process_join_returns_child_value():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return "done"

    def parent():
        value = yield sim.process(child())
        return (sim.now, value)

    proc = sim.process(parent())
    sim.run()
    assert proc.result == (1.0, "done")


def test_join_already_finished_process():
    sim = Simulator()

    def child():
        yield sim.timeout(0.5)
        return 7

    cp = sim.process(child())

    def parent():
        yield sim.timeout(2.0)
        value = yield cp
        return value

    pp = sim.process(parent())
    sim.run()
    assert pp.result == 7
    assert sim.now == 2.0


def test_unjoined_process_exception_propagates_from_run():
    sim = Simulator()

    def boom():
        yield sim.timeout(1.0)
        raise ValueError("kaboom")

    sim.process(boom())
    with pytest.raises(ValueError, match="kaboom"):
        sim.run()


def test_joined_process_exception_delivered_to_joiner():
    sim = Simulator()

    def boom():
        yield sim.timeout(1.0)
        raise ValueError("kaboom")

    def parent():
        try:
            yield sim.process(boom())
        except ValueError as err:
            return f"caught {err}"

    proc = sim.process(parent())
    sim.run()
    assert proc.result == "caught kaboom"


def test_yielding_non_waitable_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(SimulationError, match="not a Waitable"):
        sim.run()


def test_signal_wakes_all_waiters_with_value():
    sim = Simulator()
    sig = sim.signal("go")
    results = []

    def waiter(tag):
        value = yield sig
        results.append((tag, value, sim.now))

    sim.process(waiter("a"))
    sim.process(waiter("b"))
    sim.schedule(3.0, sig.succeed, 99)
    sim.run()
    assert sorted(results) == [("a", 99, 3.0), ("b", 99, 3.0)]


def test_signal_fires_immediately_if_already_fired():
    sim = Simulator()
    sig = sim.signal()
    sig.succeed("early")

    def waiter():
        value = yield sig
        return (sim.now, value)

    proc = sim.process(waiter())
    sim.run()
    assert proc.result == (0.0, "early")


def test_signal_double_fire_rejected():
    sim = Simulator()
    sig = sim.signal()
    sig.succeed()
    with pytest.raises(SimulationError):
        sig.succeed()


def test_signal_fail_raises_in_waiter():
    sim = Simulator()
    sig = sim.signal()

    def waiter():
        try:
            yield sig
        except RuntimeError:
            return "failed as expected"

    proc = sim.process(waiter())
    sim.schedule(1.0, sig.fail, RuntimeError("down"))
    sim.run()
    assert proc.result == "failed as expected"


def test_all_of_waits_for_every_child():
    sim = Simulator()

    def sleeper(dt):
        yield sim.timeout(dt)
        return dt

    def parent():
        procs = [sim.process(sleeper(d)) for d in (3.0, 1.0, 2.0)]
        values = yield AllOf(procs)
        return (sim.now, values)

    proc = sim.process(parent())
    sim.run()
    assert proc.result == (3.0, [3.0, 1.0, 2.0])


def test_all_of_empty_completes_immediately():
    sim = Simulator()

    def parent():
        values = yield AllOf([])
        return (sim.now, values)

    proc = sim.process(parent())
    sim.run()
    assert proc.result == (0.0, [])


def test_any_of_returns_first_completion():
    sim = Simulator()

    def sleeper(dt):
        yield sim.timeout(dt)
        return dt

    def parent():
        procs = [sim.process(sleeper(d)) for d in (3.0, 1.0, 2.0)]
        index, value = yield AnyOf(procs)
        return (sim.now, index, value)

    proc = sim.process(parent())
    sim.run()
    assert proc.result == (1.0, 1, 1.0)


def test_any_of_with_timeout_acts_as_deadline():
    sim = Simulator()

    def slow():
        yield sim.timeout(10.0)
        return "slow"

    def parent():
        index, _ = yield AnyOf([sim.process(slow()), sim.timeout(2.0)])
        return (sim.now, index)

    proc = sim.process(parent())
    sim.run()
    assert proc.result == (2.0, 1)


def test_any_of_requires_children():
    with pytest.raises(SimulationError):
        AnyOf([])


def test_interrupt_terminates_blocked_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            return ("interrupted", intr.cause, sim.now)

    proc = sim.process(sleeper())
    sim.schedule(1.0, proc.interrupt, "shutdown")
    sim.run()
    assert proc.result == ("interrupted", "shutdown", 1.0)
    assert sim.now == pytest.approx(1.0)


def test_interrupt_after_finish_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)
        return "ok"

    proc = sim.process(quick())
    sim.run()
    proc.interrupt()
    sim.run()
    assert proc.result == "ok"


def test_uncaught_interrupt_finishes_process_with_cause():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)

    proc = sim.process(sleeper())
    sim.schedule(1.0, proc.interrupt, "cause-value")
    sim.run()
    assert proc.result == "cause-value"


def test_result_before_finish_raises():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(1.0)

    proc = sim.process(sleeper())
    with pytest.raises(SimulationError):
        _ = proc.result


def test_nested_process_chain_timing():
    sim = Simulator()

    def level(n):
        if n == 0:
            yield sim.timeout(1.0)
            return 1
        value = yield sim.process(level(n - 1))
        yield sim.timeout(1.0)
        return value + 1

    proc = sim.process(level(4))
    sim.run()
    assert proc.result == 5
    assert sim.now == 5.0


def test_many_processes_deterministic():
    def run_once():
        sim = Simulator()
        order = []

        def worker(i):
            yield sim.timeout(i * 0.1)
            order.append(i)

        for i in range(50):
            sim.process(worker(i))
        sim.run()
        return order

    assert run_once() == run_once() == sorted(range(50))
