"""Harness: point runner, repetitions, figure plumbing, reporting."""

import pytest

from repro.errors import ConfigError
from repro.harness import build_figure, render_figure, render_markdown
from repro.harness.experiment import PointSpec, run_point
from repro.harness.figures import FIGURES, Check, FigureResult, Series
from repro.units import GiB


def small_spec(**kwargs):
    defaults = dict(
        workload="ior", store="daos", api="DAOS",
        n_servers=2, n_client_nodes=2, ppn=4, ops_per_process=8,
    )
    defaults.update(kwargs)
    return PointSpec(**defaults)


# -- PointSpec / run_point ------------------------------------------------------


def test_spec_validation():
    with pytest.raises(ConfigError):
        PointSpec(workload="ior", store="nfs")
    with pytest.raises(ConfigError):
        PointSpec(workload="dance", store="daos")


def test_spec_with_and_derived():
    spec = small_spec()
    assert spec.with_(ppn=8).ppn == 8
    assert spec.total_processes == 8
    assert small_spec(extra=(("pg_num", 64),)).extra_kwargs == {"pg_num": 64}


def test_run_point_aggregates_reps():
    result = run_point(small_spec(), reps=3)
    assert result.reps == 3
    assert result.write_bw[0] > 0
    assert result.read_bw[0] > 0
    assert result.write_bw[1] >= 0  # std present
    assert result.bw("write") == result.write_bw[0]
    assert result.iops("write") > 0


def test_run_point_reps_vary_with_seed():
    """Different repetitions use different seeds, so jitter makes the
    measured bandwidths differ slightly (paper-style error bars)."""
    result = run_point(small_spec(), reps=3)
    assert result.write_bw[1] > 0


def test_run_point_deterministic_for_same_seed():
    a = run_point(small_spec(), reps=2, base_seed=5)
    b = run_point(small_spec(), reps=2, base_seed=5)
    assert a.write_bw == b.write_bw
    assert a.read_bw == b.read_bw


def test_run_point_rejects_zero_reps():
    with pytest.raises(ConfigError):
        run_point(small_spec(), reps=0)


def test_run_point_lustre_and_ceph_stores():
    lustre = run_point(small_spec(store="lustre", api="LUSTRE"), reps=1)
    assert lustre.write_bw[0] > 0
    ceph = run_point(small_spec(store="ceph", api="RADOS"), reps=1)
    assert ceph.write_bw[0] > 0


# -- figures ---------------------------------------------------------------------


def test_figure_registry_complete():
    # one entry for every paper element in DESIGN.md's experiment index,
    # plus the FD degraded-mode family (docs/FAULTS.md) and the SC
    # cohort-scalability figure (docs/PERFORMANCE.md)
    assert set(FIGURES) == {
        "HW", "F1", "F2", "F3", "F4", "F5", "F6", "RP2",
        "F7", "LIOR", "F8", "CIOR", "F9", "FD", "SC",
    }


def test_build_unknown_figure():
    with pytest.raises(ConfigError):
        build_figure("F99")


def test_bad_scale_rejected():
    with pytest.raises(ConfigError):
        build_figure("F1", scale="gigantic")


def test_hw_figure_passes():
    result = build_figure("HW", scale="quick")
    assert result.all_passed
    assert result.fig_id == "HW"


def test_series_helpers():
    s = Series("x", [1, 2, 4], [10.0, 20.0, 15.0], [0.0, 1.0, 0.5])
    assert s.peak == 20.0
    assert s.at(4) == 15.0
    with pytest.raises(ConfigError, match=r"series 'x'.*\[1, 2, 4\]"):
        s.at(99)


def test_figure_result_series_lookup():
    s = Series("a", [1], [1.0], [0.0])
    fig = FigureResult(
        fig_id="T", title="t", xlabel="x", panels={"p": [s]},
        paper_expectation="", checks=[Check("c", True)],
    )
    assert fig.series("p", "a") is s
    with pytest.raises(KeyError):
        fig.series("p", "zzz")
    assert fig.all_passed


# -- reporting ---------------------------------------------------------------------


@pytest.fixture()
def sample_figure():
    return FigureResult(
        fig_id="FX",
        title="sample",
        xlabel="procs",
        panels={
            "write": [Series("api-a", [16, 32], [10.0, 20.0], [0.5, 0.0])],
            "read": [Series("api-a", [16, 32], [30.0, 40.0], [0.0, 1.0])],
        },
        paper_expectation="goes up",
        checks=[Check("rises", True, "20 > 10"), Check("falls", False, "nope")],
    )


def test_render_figure_contains_everything(sample_figure):
    text = render_figure(sample_figure)
    assert "FX: sample" in text
    assert "api-a" in text
    assert "[PASS] rises" in text
    assert "[FAIL] falls" in text
    assert "goes up" in text


def test_render_markdown_table(sample_figure):
    md = render_markdown(sample_figure)
    assert "### FX: sample" in md
    assert "| api-a |" in md
    assert "✅ pass" in md and "❌ fail" in md


def test_cli_single_figure(capsys):
    from repro.harness.cli import main

    rc = main(["HW"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "HW: Hardware bandwidth" in out


def test_cli_unknown_figure():
    from repro.harness.cli import main

    with pytest.raises(SystemExit):
        main(["F99"])


def test_cli_markdown_output(tmp_path, capsys):
    from repro.harness.cli import main

    md_path = tmp_path / "out.md"
    rc = main(["HW", "--markdown", str(md_path)])
    assert rc == 0
    assert "### HW" in md_path.read_text()


def test_cli_trace_and_metrics_flags(tmp_path, capsys):
    """--trace writes valid Chrome trace-event JSON; --metrics prints the
    instrument table; the figure output gains a bottleneck summary."""
    import json

    from repro.harness.cli import main

    trace_path = tmp_path / "hw.json"
    rc = main(["HW", "--trace", str(trace_path), "--metrics"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "bottleneck summary:" in out
    assert "sim.events_executed" in out
    assert f"trace events written to {trace_path}" in out

    doc = json.loads(trace_path.read_text())
    assert "traceEvents" in doc
    slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert slices
    for event in slices:  # trace-event schema: chrome://tracing essentials
        assert isinstance(event["name"], str) and event["name"]
        assert isinstance(event["ts"], (int, float))
        assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
    metas = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
    assert any(m["name"] == "process_name" for m in metas)
    assert {e["cat"] for e in slices} >= {"sim", "flownet"}


def test_cli_trace_multiple_figures_offsets_pids(tmp_path, capsys):
    import json

    from repro.harness.cli import main

    trace_path = tmp_path / "two.json"
    rc = main(["HW", "--trace", str(trace_path)])
    assert rc == 0
    capsys.readouterr()
    doc = json.loads(trace_path.read_text())
    labels = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    assert any(label.startswith("HW") for label in labels)


# -- client-configuration optimisation (paper Sec. II methodology) ---------------


def test_find_optimal_clients_prefers_more_parallelism():
    from repro.harness.optimize import find_optimal_clients

    base = small_spec(n_servers=4, ops_per_process=16)
    result = find_optimal_clients(base, node_grid=[1, 2], ppn_grid=[2, 16])
    assert len(result.table) == 4
    (nodes, ppn), best_point = result.best["write"]
    # a 4-server system needs the bigger client config to saturate
    assert (nodes, ppn) == (2, 16)
    assert result.best_bandwidth("write") == best_point.bw("write")
    assert "write" in result.summary()
    assert result.best_spec("write").ppn == 16


def test_find_optimal_clients_validates_grids():
    from repro.errors import ConfigError
    from repro.harness.optimize import find_optimal_clients

    with pytest.raises(ConfigError):
        find_optimal_clients(small_spec(), node_grid=[], ppn_grid=[1])


def test_fig4_end_to_end_quick():
    """One real (small) figure through the whole pipeline inside the test
    suite, guarding the harness against regressions between bench runs."""
    result = build_figure("F4", scale="quick")
    assert result.all_passed, [c.description for c in result.checks if not c.passed]
    md = render_markdown(result)
    assert "IOR libdaos" in md
    text = render_figure(result)
    assert "F4" in text
