"""Smoke tests: the runnable examples must stay runnable.

The heavyweight sweep example (storage_comparison) is exercised by the
benchmark suite's figures instead; here we run the fast ones end to end
and check their printed claims.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "KV roundtrip: 'hello, object store'" in out
    assert "reconstructed the data" in out
    assert "simulated time elapsed" in out


def test_interfaces_tour(capsys):
    out = run_example("interfaces_tour.py", capsys)
    for label in ("libdaos", "libdfs", "DFUSE", "DFUSE+IL"):
        assert label in out
    # DFUSE must show visibly fewer small-op IOPS than the IL
    lines = {line.split()[0]: line for line in out.splitlines() if line.strip()}
    assert "kops/s" in lines["DFUSE"]


def test_weather_fields(capsys):
    out = run_example("weather_fields.py", capsys)
    assert "FDB on DAOS" in out
    assert "FDB on Lustre" in out
    assert "FDB on Ceph" in out


def test_redundancy_failures(capsys):
    out = run_example("redundancy_failures.py", capsys)
    assert "EC 2+1" in out
    assert "DATA LOST (as expected)" in out
    assert "data intact" in out


def test_examples_exist_and_documented():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 5
    for script in scripts:
        head = (EXAMPLES / script).read_text().split("\n", 3)
        assert head[0].startswith("#!"), script
        assert '"""' in head[1], f"{script} missing a module docstring"


def test_performance_debugging(capsys):
    out = run_example("performance_debugging.py", capsys)
    assert "hot links" in out
    assert "roofline" in out
    assert "efficiency" in out
