"""Unit parsing and formatting."""

import pytest

from repro.units import GiB, Gbps, KiB, MiB, TiB, fmt_bw, fmt_bytes, fmt_iops, parse_size


def test_constants_are_binary_powers():
    assert KiB == 2**10
    assert MiB == 2**20
    assert GiB == 2**30
    assert TiB == 2**40


def test_gbps_matches_paper_convention():
    # Paper: 50 Gbps NIC = 6.25 GiB/s.
    assert 50 * Gbps == pytest.approx(6.25 * GiB)


@pytest.mark.parametrize(
    "text,expected",
    [
        ("1 MiB", MiB),
        ("1MiB", MiB),
        ("4kib", 4 * KiB),
        ("2 GiB", 2 * GiB),
        ("1.5 KiB", 1536),
        ("100 MB", 100 * 1000**2),
        ("3 TB", 3 * 1000**4),
        ("512", 512),
        ("0", 0),
        (4096, 4096),
        (1.0, 1),
    ],
)
def test_parse_size(text, expected):
    assert parse_size(text) == expected


def test_parse_size_case_insensitive():
    assert parse_size("1 gib") == parse_size("1 GiB") == parse_size("1GIB")


def test_parse_size_garbage_raises():
    with pytest.raises(ValueError):
        parse_size("lots")


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(1536) == "1.50 KiB"
    assert fmt_bytes(3 * GiB) == "3.00 GiB"
    assert fmt_bytes(2 * TiB) == "2.00 TiB"


def test_fmt_bw():
    assert fmt_bw(61.76 * GiB) == "61.76 GiB/s"


def test_fmt_iops():
    assert fmt_iops(950.0) == "950.0 ops/s"
    assert fmt_iops(12_500) == "12.50 kops/s"
    assert fmt_iops(3_000_000) == "3.00 Mops/s"
