"""Unit parsing and formatting."""

import pytest

from repro.units import GiB, Gbps, KiB, MiB, TiB, fmt_bw, fmt_bytes, fmt_iops, parse_size


def test_constants_are_binary_powers():
    assert KiB == 2**10
    assert MiB == 2**20
    assert GiB == 2**30
    assert TiB == 2**40


def test_gbps_matches_paper_convention():
    # Paper: 50 Gbps NIC = 6.25 GiB/s.
    assert 50 * Gbps == pytest.approx(6.25 * GiB)


@pytest.mark.parametrize(
    "text,expected",
    [
        ("1 MiB", MiB),
        ("1MiB", MiB),
        ("4kib", 4 * KiB),
        ("2 GiB", 2 * GiB),
        ("1.5 KiB", 1536),
        ("100 MB", 100 * 1000**2),
        ("3 TB", 3 * 1000**4),
        ("512", 512),
        ("0", 0),
        (4096, 4096),
        (1.0, 1),
    ],
)
def test_parse_size(text, expected):
    assert parse_size(text) == expected


def test_parse_size_case_insensitive():
    assert parse_size("1 gib") == parse_size("1 GiB") == parse_size("1GIB")


def test_parse_size_garbage_raises():
    with pytest.raises(ValueError):
        parse_size("lots")


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(1536) == "1.50 KiB"
    assert fmt_bytes(3 * GiB) == "3.00 GiB"
    assert fmt_bytes(2 * TiB) == "2.00 TiB"


def test_fmt_bw():
    assert fmt_bw(61.76 * GiB) == "61.76 GiB/s"


def test_fmt_iops():
    assert fmt_iops(950.0) == "950.0 ops/s"
    assert fmt_iops(12_500) == "12.50 kops/s"
    assert fmt_iops(3_000_000) == "3.00 Mops/s"


@pytest.mark.parametrize(
    "n", [0, 1, 512, 1023, KiB, 1536, MiB, 5 * GiB, TiB, 2 * TiB]
)
def test_fmt_parse_round_trip(n):
    # fmt_bytes keeps two decimals, so any value expressible as a
    # hundredth of its suffix unit must survive the round trip exactly
    assert parse_size(fmt_bytes(n)) == n


def test_parse_size_zero_and_negative():
    assert parse_size("0 MiB") == 0
    assert parse_size("-1 MiB") == -MiB
    assert parse_size(-4096) == -4096
    assert parse_size("-2.5 KiB") == -2560


def test_parse_size_scientific_notation():
    assert parse_size("1e3") == 1000
    assert parse_size("1e3 b") == 1000


def test_parse_size_decimal_vs_binary_suffixes():
    assert parse_size("1 kb") == 1000
    assert parse_size("1 kib") == 1024
    assert parse_size("1.5kb") == 1500


def test_parse_size_bare_suffix_raises():
    with pytest.raises(ValueError):
        parse_size("kb")
    with pytest.raises(ValueError):
        parse_size("")


def test_fmt_bytes_zero_and_negative():
    assert fmt_bytes(0) == "0 B"
    assert fmt_bytes(-512) == "-512 B"
    assert fmt_bytes(-1536) == "-1.50 KiB"
    assert fmt_bytes(-2 * GiB) == "-2.00 GiB"


def test_fmt_bytes_boundaries():
    # one below each threshold stays in the smaller unit
    assert fmt_bytes(KiB - 1) == "1023 B"
    assert fmt_bytes(KiB) == "1.00 KiB"
    assert fmt_bytes(MiB - 1) == "1024.00 KiB"
    assert fmt_bytes(MiB) == "1.00 MiB"
    assert fmt_bytes(TiB) == "1.00 TiB"


def test_fmt_bw_zero_and_negative():
    assert fmt_bw(0.0) == "0.00 GiB/s"
    assert fmt_bw(-1.5 * GiB) == "-1.50 GiB/s"


def test_fmt_iops_boundaries():
    assert fmt_iops(0.0) == "0.0 ops/s"
    assert fmt_iops(999.9) == "999.9 ops/s"
    assert fmt_iops(1000.0) == "1.00 kops/s"
    assert fmt_iops(1e6) == "1.00 Mops/s"
    assert fmt_iops(-12_500) == "-12.50 kops/s"
