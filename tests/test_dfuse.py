"""DFUSE daemon model and the interception library."""

import pytest

from repro.daos import DaosClient, Pool
from repro.dfs import Dfs
from repro.dfuse import DfuseMount, DfuseParams, InterceptedMount
from repro.errors import InvalidArgumentError
from repro.hardware import Cluster
from repro.units import KiB, MiB


def build(n_servers=4, params=None, chunk_size=MiB):
    cluster = Cluster(n_servers=n_servers, n_clients=1, seed=0)
    pool = Pool(cluster)
    client = DaosClient(cluster, pool, cluster.clients[0])
    cont = pool.create_container("posix", materialize=False)
    dfs = Dfs(client, cont, chunk_size=chunk_size)
    mount = DfuseMount(dfs, cluster.clients[0], params=params)
    return cluster, mount


def drive(cluster, gen):
    proc = cluster.sim.process(gen)
    cluster.sim.run()
    return proc.result


def test_daemon_capacity_from_thread_counts():
    p = DfuseParams(fuse_threads=24, eq_threads=12)
    assert p.daemon_capacity == pytest.approx(min(24 * 250.0, 12 * 600.0))
    tiny = DfuseParams(fuse_threads=1, eq_threads=1)
    assert tiny.daemon_capacity == pytest.approx(250.0)


def test_mount_and_file_roundtrip():
    cluster, mount = build()

    def flow():
        yield from mount.mount()
        fh = yield from mount.creat("/f")
        yield from mount.write(fh, 0, nbytes=64 * KiB)
        data = yield from mount.read(fh, 0, 64 * KiB)
        yield from mount.close(fh)
        return len(data)

    assert drive(cluster, flow()) == 64 * KiB


def test_fuse_adds_kernel_crossing_latency():
    """A DFUSE op must cost at least the kernel crossing more than the
    equivalent direct libdfs op."""
    cluster, mount = build()

    def flow():
        yield from mount.mount()
        fh = yield from mount.creat("/f")
        yield from mount.write(fh, 0, nbytes=1 * KiB)
        t0 = cluster.sim.now
        yield from mount.read(fh, 0, 1 * KiB)
        fuse_time = cluster.sim.now - t0
        t1 = cluster.sim.now
        yield from mount.dfs.read(fh, 0, 1 * KiB)
        direct_time = cluster.sim.now - t1
        return fuse_time, direct_time

    fuse_time, direct_time = drive(cluster, flow())
    assert fuse_time >= direct_time + mount.params.kernel_crossing


def test_interception_bypasses_fuse_for_data():
    cluster, mount = build()
    il = InterceptedMount(mount)

    def flow():
        yield from il.mount()  # falls through to the wrapped mount
        fh = yield from il.creat("/f")
        yield from il.write(fh, 0, nbytes=1 * KiB)
        t0 = cluster.sim.now
        yield from mount.read(fh, 0, 1 * KiB)
        via_fuse = cluster.sim.now - t0
        t1 = cluster.sim.now
        yield from il.read(fh, 0, 1 * KiB)
        via_il = cluster.sim.now - t1
        return via_fuse, via_il

    via_fuse, via_il = drive(cluster, flow())
    assert via_il < via_fuse


def test_il_small_io_iops_much_higher():
    """Paper Fig. 2: at 1 KiB the IL reaches far higher IOPS than DFUSE."""
    cluster, mount = build(chunk_size=4 * KiB)
    il = InterceptedMount(mount)
    n_ops = 200

    def flow():
        yield from mount.mount()
        fh = yield from mount.creat("/f")
        t0 = cluster.sim.now
        for i in range(n_ops):
            yield from mount.write(fh, i * KiB, nbytes=KiB)
        t_fuse = cluster.sim.now - t0
        t1 = cluster.sim.now
        for i in range(n_ops):
            yield from il.write(fh, i * KiB, nbytes=KiB)
        t_il = cluster.sim.now - t1
        return t_fuse / t_il

    speedup = drive(cluster, flow())
    assert speedup > 1.5


def test_attr_cache_skips_round_trips():
    cluster, mount = build(params=DfuseParams(caching=True))

    def flow():
        yield from mount.mount()
        fh = yield from mount.creat("/f")
        yield from mount.write(fh, 0, nbytes=128)
        yield from mount.stat("/f")  # populates the cache
        t0 = cluster.sim.now
        yield from mount.stat("/f")
        return cluster.sim.now - t0

    assert drive(cluster, flow()) == 0.0


def test_no_cache_stat_always_pays(env=None):
    cluster, mount = build(params=DfuseParams(caching=False))

    def flow():
        yield from mount.mount()
        fh = yield from mount.creat("/f")
        yield from mount.write(fh, 0, nbytes=128)
        yield from mount.stat("/f")
        t0 = cluster.sim.now
        yield from mount.stat("/f")
        return cluster.sim.now - t0

    assert drive(cluster, flow()) > 0.0


def test_cache_invalidation_on_unlink():
    cluster, mount = build(params=DfuseParams(caching=True))

    def flow():
        yield from mount.mount()
        fh = yield from mount.creat("/f")
        yield from mount.stat("/f")
        yield from mount.unlink("/f")
        return "/f" in mount._attr_cache

    assert drive(cluster, flow()) is False


def test_daemon_throughput_bounds_small_io():
    """With a tiny daemon pool, many concurrent writers are throttled to
    the daemon capacity, not the network."""
    params = DfuseParams(fuse_threads=1, eq_threads=1, per_fuse_thread_ops=100.0)
    cluster, mount = build(params=params, chunk_size=4 * KiB)
    n_writers, ops = 8, 25
    done = {}

    def writer(i, fh):
        for k in range(ops):
            yield from mount.write(fh, (i * ops + k) * KiB, nbytes=KiB)
        done[i] = cluster.sim.now

    def main():
        yield from mount.mount()
        fh = yield from mount.creat("/shared")
        for i in range(n_writers):
            cluster.sim.process(writer(i, fh))

    cluster.sim.process(main())
    cluster.sim.run()
    elapsed = max(done.values())
    achieved_ops = n_writers * ops / elapsed
    assert achieved_ops <= 100.0 * 1.05  # daemon-capacity bound


def test_intercepted_mount_requires_dfuse():
    with pytest.raises(InvalidArgumentError):
        InterceptedMount(object())


def test_mkdir_readdir_symlink_via_fuse():
    cluster, mount = build()

    def flow():
        yield from mount.mount()
        yield from mount.mkdir("/d")
        fh = yield from mount.creat("/d/f")
        yield from mount.close(fh)
        yield from mount.symlink("/d/l", "/d/f")
        return (yield from mount.readdir("/d"))

    assert drive(cluster, flow()) == ["f", "l"]


# -- data (page) cache -----------------------------------------------------------


def build_cached(**params_kw):
    return build(params=DfuseParams(data_caching=True, **params_kw))


def test_data_cache_hit_costs_no_time():
    cluster, mount = build_cached()

    def flow():
        yield from mount.mount()
        fh = yield from mount.creat("/f")
        yield from mount.write(fh, 0, nbytes=128 * KiB)
        t0 = cluster.sim.now
        yield from mount.read(fh, 0, 128 * KiB)  # resident (write-through)
        return cluster.sim.now - t0

    assert drive(cluster, flow()) == 0.0
    assert mount.data_cache_hits == 1


def test_data_cache_miss_then_hit():
    cluster, mount = build_cached()

    def flow():
        yield from mount.mount()
        fh = yield from mount.creat("/f")
        yield from mount.write(fh, 0, nbytes=512 * KiB)
        mount.invalidate_caches()
        t0 = cluster.sim.now
        yield from mount.read(fh, 0, 512 * KiB)  # miss: full path
        miss_time = cluster.sim.now - t0
        t1 = cluster.sim.now
        yield from mount.read(fh, 0, 512 * KiB)  # hit
        hit_time = cluster.sim.now - t1
        return miss_time, hit_time

    miss_time, hit_time = drive(cluster, flow())
    assert miss_time > 0.0
    assert hit_time == 0.0
    assert mount.data_cache_misses == 1
    assert mount.data_cache_hits == 1


def test_data_cache_returns_real_bytes():
    cluster = Cluster(n_servers=2, n_clients=1, seed=0)
    from repro.daos import DaosClient, Pool
    from repro.dfs import Dfs

    pool = Pool(cluster)
    client = DaosClient(cluster, pool, cluster.clients[0])
    cont = pool.create_container("pc", materialize=True)
    dfs = Dfs(client, cont, chunk_size=MiB)
    mount = DfuseMount(dfs, cluster.clients[0], params=DfuseParams(data_caching=True))
    payload = bytes(range(256)) * (64 * KiB // 256)

    def flow():
        yield from mount.mount()
        fh = yield from mount.creat("/f")
        yield from mount.write(fh, 0, payload)
        hit = yield from mount.read(fh, 0, len(payload))
        return hit

    assert drive(cluster, flow()) == payload


def test_data_cache_lru_eviction():
    cluster, mount = build_cached(data_cache_bytes=256 * KiB)

    def flow():
        yield from mount.mount()
        fh = yield from mount.creat("/f")
        # write 1 MiB through a 256 KiB cache: early pages evicted
        yield from mount.write(fh, 0, nbytes=MiB)
        t0 = cluster.sim.now
        yield from mount.read(fh, 0, 128 * KiB)  # evicted -> miss
        return cluster.sim.now - t0

    assert drive(cluster, flow()) > 0.0
    assert mount._page_cache_bytes <= 256 * KiB


def test_data_cache_invalidated_on_unlink():
    cluster, mount = build_cached()

    def flow():
        yield from mount.mount()
        fh = yield from mount.creat("/f")
        yield from mount.write(fh, 0, nbytes=128 * KiB)
        yield from mount.close(fh)
        yield from mount.unlink("/f")
        return mount._page_cache_bytes

    assert drive(cluster, flow()) == 0


def test_data_cache_off_by_default():
    cluster, mount = build()

    def flow():
        yield from mount.mount()
        fh = yield from mount.creat("/f")
        yield from mount.write(fh, 0, nbytes=128 * KiB)
        t0 = cluster.sim.now
        yield from mount.read(fh, 0, 128 * KiB)
        return cluster.sim.now - t0

    assert drive(cluster, flow()) > 0.0
    assert mount.data_cache_hits == 0
