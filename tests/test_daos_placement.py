"""Placement: jump hash, node-interleaved ring, group layout."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.daos.placement import interleave_ring, jump_consistent_hash, place_groups
from repro.errors import InvalidArgumentError


def test_jump_hash_in_range():
    for key in (0, 1, 2**63, 2**64 - 1):
        assert 0 <= jump_consistent_hash(key, 10) < 10


def test_jump_hash_deterministic():
    assert jump_consistent_hash(12345, 100) == jump_consistent_hash(12345, 100)


def test_jump_hash_single_bucket():
    assert jump_consistent_hash(999, 1) == 0


def test_jump_hash_rejects_nonpositive_buckets():
    with pytest.raises(InvalidArgumentError):
        jump_consistent_hash(1, 0)


@given(st.integers(0, 2**64 - 1))
def test_jump_hash_monotone_property(key):
    """Jump hash guarantee: growing the bucket count only moves keys into
    the *new* bucket, never between old buckets."""
    small = jump_consistent_hash(key, 16)
    large = jump_consistent_hash(key, 17)
    assert large == small or large == 16


def test_jump_hash_roughly_uniform():
    counts = [0] * 8
    for key in range(4000):
        counts[jump_consistent_hash(key * 2654435761, 8)] += 1
    for c in counts:
        assert 350 < c < 650  # 500 expected


def test_interleave_ring_round_robin():
    ring = interleave_ring([["a0", "a1"], ["b0", "b1"], ["c0", "c1"]])
    assert ring == ["a0", "b0", "c0", "a1", "b1", "c1"]


def test_interleave_ring_uneven():
    ring = interleave_ring([["a0", "a1", "a2"], ["b0"]])
    assert ring == ["a0", "b0", "a1", "a2"]


def test_interleave_ring_empty():
    assert interleave_ring([]) == []


def test_place_groups_shapes():
    groups = place_groups(oid_key=7, n_groups=4, group_width=3, ring_size=64)
    assert len(groups) == 4
    assert all(len(g) == 3 for g in groups)
    flat = [slot for g in groups for slot in g]
    assert len(set(flat)) == 12  # consecutive distinct slots


def test_place_groups_deterministic_and_salted():
    a = [place_groups(oid, 2, 2, 4096, salt="x") for oid in range(50)]
    b = [place_groups(oid, 2, 2, 4096, salt="x") for oid in range(50)]
    c = [place_groups(oid, 2, 2, 4096, salt="y") for oid in range(50)]
    assert a == b
    assert a != c  # different salt reshuffles at least one of 50 objects


def test_place_groups_full_ring():
    groups = place_groups(5, n_groups=16, group_width=1, ring_size=16)
    flat = sorted(slot for g in groups for slot in g)
    assert flat == list(range(16))  # SX covers every target exactly once


def test_place_groups_too_big_rejected():
    with pytest.raises(InvalidArgumentError):
        place_groups(1, n_groups=4, group_width=5, ring_size=16)


def test_place_groups_spread_across_objects():
    """Different OIDs should start at well-spread ring offsets."""
    starts = {place_groups(oid, 1, 1, 256)[0][0] for oid in range(200)}
    assert len(starts) > 100
