"""Cohort aggregation: N identical clients modelled as one scaled flow.

The contract (docs/PERFORMANCE.md) is *bitwise* exactness for uniform
workloads: running ``n_client_nodes=N, cohort=1`` and
``n_client_nodes=1, cohort=N`` must produce identical bandwidth and
IOPS, provided every stochastic term is disabled (``jitter_sigma=0``
and per-client ``op_jitter_sigma=0``) and placement is uniform (IOR's
SX object class).  These tests are the CI gate for that contract; the
perf-smoke job runs them before timing the SC scalability figure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.daos.client import DaosClient, cohort_weight, _EXACT_COHORT_SUM
from repro.errors import ConfigError, InvalidArgumentError
from repro.hardware.cluster import Cluster
from repro.harness.experiment import PointSpec, spec_token
from repro.workloads.common import DaosEnv, LustreEnv, WorkloadConfig
from repro.workloads.ior import run_ior


def _run_ior(n_nodes: int, cohort: int, api: str = "DAOS", seed: int = 7):
    """One deterministic IOR run; returns (bw_w, bw_r, iops_w, iops_r)."""
    cluster = Cluster(n_servers=4, n_clients=max(n_nodes, 1), seed=seed)
    env = DaosEnv(cluster, jitter_sigma=0.0, cohort=cohort)
    for node in cluster.clients[:n_nodes]:
        # op jitter is keyed per client and defaults on; the exactness
        # contract requires every stochastic term off
        env.client(node).op_jitter_sigma = 0.0
    cfg = WorkloadConfig(
        n_client_nodes=n_nodes, ppn=4, ops_per_process=16, mode="aggregate",
        jitter_sigma=0.0, cohort=cohort,
    )
    rec = run_ior(env, cfg, api)
    return (
        rec.bandwidth("write"), rec.bandwidth("read"),
        rec.iops("write"), rec.iops("read"),
    )


@pytest.mark.parametrize("api", ["DAOS", "DFS", "POSIX"])
@pytest.mark.parametrize("n", [2, 8])
def test_cohort_bitwise_equals_per_client(n, api):
    """cohort=N on one node == N separate nodes, bit for bit.

    POSIX goes through dfuse, whose fuse_link is a per-member-node
    private resource (marked local, so its weight is *not* scaled).
    """
    per_client = _run_ior(n, 1, api=api)
    cohort = _run_ior(1, n, api=api)
    for a, b in zip(per_client, cohort):
        assert a == b  # exact: the cohort contract is bitwise equality


def test_cohort_million_clients_smoke():
    """A 10^6-modelled-process point completes quickly with sane output."""
    cluster = Cluster(n_servers=16, n_clients=10, seed=0)
    env = DaosEnv(cluster, cohort=100_000)
    cfg = WorkloadConfig(
        n_client_nodes=10, ppn=1, ops_per_process=32, batches=2,
        cohort=100_000,
    )
    assert cfg.modelled_processes == 1_000_000
    rec = run_ior(env, cfg, "DAOS")
    bw = rec.bandwidth("write")
    assert np.isfinite(bw) and bw > 0


# ---------------------------------------------------------------------------
# cohort_weight: the N-fold link-weight sum


def test_cohort_weight_matches_bincount_accumulation():
    """Below the threshold the fold-sum is bitwise-identical to numpy's
    bincount accumulating N separate per-member edges on one link."""
    for w in (0.1, 1.0 / 3.0, 7.3e-4, 123.456):
        for n in (1, 2, 3, 7, 100, 1000, _EXACT_COHORT_SUM):
            ref = float(np.bincount([0] * n, weights=[w] * n)[0])
            assert cohort_weight(w, n) == ref  # exact: fold-sum contract


def test_cohort_weight_large_n_uses_multiplication():
    n = _EXACT_COHORT_SUM + 1
    assert cohort_weight(0.1, n) == n * 0.1  # exact: same expression


# ---------------------------------------------------------------------------
# validation and spec plumbing


def test_cohort_validation_errors():
    cluster = Cluster(n_servers=2, n_clients=2, seed=0)
    env = DaosEnv(cluster)
    with pytest.raises(InvalidArgumentError):
        DaosClient(cluster, env.pool, cluster.clients[0], cohort=0)
    with pytest.raises(ConfigError):
        DaosEnv(cluster, cohort=0)
    with pytest.raises(ConfigError):
        WorkloadConfig(n_client_nodes=1, ppn=1, cohort=0)
    with pytest.raises(ConfigError):
        WorkloadConfig(n_client_nodes=1, ppn=1, mode="exact", cohort=2)


def test_cohort_env_mismatch_rejected():
    cluster = Cluster(n_servers=2, n_clients=2, seed=0)
    cfg = WorkloadConfig(n_client_nodes=1, ppn=2, ops_per_process=4, cohort=2)
    # env built without the matching cohort
    with pytest.raises(ConfigError, match="cohort"):
        run_ior(DaosEnv(cluster, cohort=1), cfg, "DAOS")
    # Lustre has no cohort support at all
    with pytest.raises(ConfigError, match="cohort"):
        run_ior(LustreEnv(cluster), cfg, "LUSTRE")


def test_point_spec_cohort_validation_and_token():
    with pytest.raises(ConfigError):
        PointSpec(workload="ior", store="daos", api="DAOS", cohort=0)
    with pytest.raises(ConfigError):
        PointSpec(workload="ior", store="lustre", api="LUSTRE", cohort=2)
    base = PointSpec(workload="ior", store="daos", api="DAOS")
    scaled = base.with_(cohort=10)
    assert scaled.modelled_processes == 10 * base.modelled_processes
    # default cohort must not perturb pre-existing tokens (cache keys/seeds)
    assert "cohort" not in spec_token(base)
    assert "cohort=10" in spec_token(scaled)
    assert spec_token(scaled) != spec_token(base)
