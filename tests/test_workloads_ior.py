"""IOR workload: all APIs, both modes, physics checks."""

import pytest

from repro.errors import ConfigError
from repro.hardware import Cluster
from repro.units import GiB, KiB, MiB
from repro.workloads.common import CephEnv, DaosEnv, LustreEnv, WorkloadConfig
from repro.workloads.ior import IOR_APIS, run_ior


def daos_env(n_servers=4, n_clients=2, seed=0):
    return DaosEnv(Cluster(n_servers=n_servers, n_clients=n_clients, seed=seed))


def small_cfg(**kwargs):
    defaults = dict(
        n_client_nodes=2, ppn=2, ops_per_process=8, op_size=MiB, mode="aggregate"
    )
    defaults.update(kwargs)
    return WorkloadConfig(**defaults)


DAOS_APIS = ("DAOS", "DFS", "POSIX", "POSIX+IL", "HDF5", "HDF5-DAOS")


@pytest.mark.parametrize("api", DAOS_APIS)
@pytest.mark.parametrize("mode", ["exact", "aggregate"])
def test_ior_daos_apis_run_both_modes(api, mode):
    env = daos_env()
    rec = run_ior(env, small_cfg(mode=mode), api)
    for phase in ("write", "read"):
        stats = rec.get(phase)
        assert stats is not None, f"{api}/{mode} missing {phase}"
        assert stats.bytes == 2 * 2 * 8 * MiB
        assert stats.bandwidth > 0


@pytest.mark.parametrize("mode", ["exact", "aggregate"])
def test_ior_lustre_runs(mode):
    cluster = Cluster(n_servers=4, n_clients=2, seed=0)
    env = LustreEnv(cluster)
    rec = run_ior(env, small_cfg(mode=mode), "LUSTRE")
    assert rec.bandwidth("write") > 0
    assert rec.bandwidth("read") > 0


@pytest.mark.parametrize("mode", ["exact", "aggregate"])
def test_ior_rados_runs(mode):
    cluster = Cluster(n_servers=4, n_clients=2, seed=0)
    env = CephEnv(cluster)
    rec = run_ior(env, small_cfg(mode=mode), "RADOS")
    assert rec.bandwidth("write") > 0
    assert rec.bandwidth("read") > 0


def test_unknown_api_rejected():
    with pytest.raises(ConfigError):
        run_ior(daos_env(), small_cfg(), "NFS")


def test_env_type_mismatch_rejected():
    cluster = Cluster(n_servers=2, n_clients=2)
    with pytest.raises(ConfigError):
        run_ior(LustreEnv(cluster), small_cfg(), "DAOS")


def test_rados_object_cap_enforced():
    cluster = Cluster(n_servers=2, n_clients=1, seed=0)
    env = CephEnv(cluster)
    cfg = small_cfg(n_client_nodes=1, ppn=1, ops_per_process=200, op_size=MiB)
    with pytest.raises(ConfigError, match="object-size cap"):
        run_ior(env, cfg, "RADOS")


def test_exact_and_aggregate_agree_daos_at_saturation():
    """The aggregate fast path must land near the exact per-op model when
    the system is saturated (the regime the paper's figures live in; at
    low concurrency exact mode resolves per-op collisions the aggregate
    lump necessarily smooths over)."""

    def bw(mode):
        env = daos_env(n_servers=1, n_clients=2, seed=1)
        cfg = small_cfg(mode=mode, ppn=8, ops_per_process=12, batches=2)
        rec = run_ior(env, cfg, "DAOS")
        return rec.bandwidth("write"), rec.bandwidth("read")

    w_exact, r_exact = bw("exact")
    w_agg, r_agg = bw("aggregate")
    assert w_agg == pytest.approx(w_exact, rel=0.25)
    assert r_agg == pytest.approx(r_exact, rel=0.25)


def test_more_processes_scale_bandwidth_until_roofline():
    env = daos_env(n_servers=4, n_clients=2, seed=0)
    rec1 = run_ior(env, small_cfg(ppn=1), "DAOS")
    env2 = daos_env(n_servers=4, n_clients=2, seed=0)
    rec8 = run_ior(env2, small_cfg(ppn=8), "DAOS")
    assert rec8.bandwidth("write") > rec1.bandwidth("write")


def test_write_bounded_by_roofline():
    env = daos_env(n_servers=2, n_clients=2, seed=0)
    cfg = small_cfg(ppn=16, ops_per_process=16)
    rec = run_ior(env, cfg, "DAOS")
    roofline = 2 * 3.86 * GiB
    assert rec.bandwidth("write") <= roofline
    assert rec.bandwidth("write") >= 0.7 * roofline  # close to it


def test_read_faster_than_write():
    env = daos_env(n_servers=2, n_clients=2, seed=0)
    rec = run_ior(env, small_cfg(ppn=16, ops_per_process=16), "DAOS")
    assert rec.bandwidth("read") > rec.bandwidth("write")


def test_dfuse_il_beats_dfuse_at_small_io():
    """Paper Fig. 2 shape: at 1 KiB, POSIX+IL reaches far higher IOPS."""

    def iops(api):
        env = daos_env(n_servers=4, n_clients=2, seed=0)
        cfg = small_cfg(ppn=8, ops_per_process=32, op_size=KiB, read_phase=False)
        rec = run_ior(env, cfg, api)
        return rec.iops("write")

    assert iops("POSIX+IL") > 1.3 * iops("POSIX")


def test_hdf5_slower_than_plain_posix_il():
    """Paper Fig. 3 shape: HDF5 on DFUSE+IL below plain IOR."""

    def bw(api):
        env = daos_env(n_servers=4, n_clients=2, seed=0)
        rec = run_ior(env, small_cfg(ppn=8, ops_per_process=16), api)
        return rec.bandwidth("write")

    assert bw("HDF5") < 0.75 * bw("POSIX+IL")


def test_hdf5_daos_containers_per_process():
    env = daos_env()
    cfg = small_cfg(mode="exact", ops_per_process=4)
    run_ior(env, cfg, "HDF5-DAOS")
    # one container per rank + no shared ior container
    assert env.pool.n_containers == cfg.total_processes


def test_recorder_can_be_supplied():
    from repro.sim.stats import PhaseRecorder

    env = daos_env()
    rec = PhaseRecorder()
    out = run_ior(env, small_cfg(), "DAOS", recorder=rec)
    assert out is rec


def test_write_only_and_read_only_phases():
    env = daos_env()
    rec = run_ior(env, small_cfg(read_phase=False), "DAOS")
    assert rec.get("read") is None
    # read-only runs still need data written first; use write+read then
    # compare a fresh write-only window
    assert rec.bandwidth("write") > 0


# -- shared-file layout (paper Sec. II-A: "a single shared file") ---------------


@pytest.mark.parametrize("api", ["DAOS", "DFS", "POSIX", "POSIX+IL"])
@pytest.mark.parametrize("mode", ["exact", "aggregate"])
def test_shared_file_mode_runs(api, mode):
    env = daos_env()
    cfg = small_cfg(mode=mode, shared_file=True)
    rec = run_ior(env, cfg, api)
    assert rec.get("write").bytes == 2 * 2 * 8 * MiB
    assert rec.bandwidth("read") > 0


def test_shared_file_single_object_created():
    env = daos_env()
    run_ior(env, small_cfg(mode="exact", shared_file=True), "DAOS")
    cont = env.pool.get_container("ior-daos")
    assert len(cont.objects) == 1  # one shared array for all ranks


def test_shared_file_segments_disjoint():
    """Each rank owns its own segment: total size = procs x blocksize."""
    env = daos_env()
    cfg = small_cfg(mode="exact", shared_file=True)
    run_ior(env, cfg, "DAOS")
    cont = env.pool.get_container("ior-daos")
    (arr,) = cont.objects.values()
    assert arr.size() == cfg.total_processes * cfg.bytes_per_process


@pytest.mark.parametrize("mode", ["exact", "aggregate"])
def test_shared_file_lustre(mode):
    cluster = Cluster(n_servers=4, n_clients=2, seed=0)
    env = LustreEnv(cluster)
    rec = run_ior(env, small_cfg(mode=mode, shared_file=True), "LUSTRE")
    assert rec.bandwidth("write") > 0
    inode = env.fs.mds.lookup("/ior.shared")
    assert inode.size > 0


def test_shared_file_unsupported_apis_rejected():
    env = daos_env()
    with pytest.raises(ConfigError, match="shared-file"):
        run_ior(env, small_cfg(shared_file=True), "HDF5-DAOS")
    cluster = Cluster(n_servers=2, n_clients=2, seed=0)
    with pytest.raises(ConfigError, match="shared-file"):
        run_ior(CephEnv(cluster), small_cfg(shared_file=True), "RADOS")
