"""Flow tracing and utilisation reporting."""

import pytest

from repro.sim.core import Simulator
from repro.sim.flownet import FlowNetwork
from repro.sim.trace import FlowTracer, utilization_report


def run_two_flows():
    sim = Simulator()
    net = FlowNetwork(sim)
    link = net.add_link("pipe", 100.0)
    tracer = FlowTracer(net).attach()

    def driver(name, size):
        flow = net.transfer(size, [(link, 1.0)], name=name)
        yield flow.done

    sim.process(driver("short", 100.0))
    sim.process(driver("long", 500.0))
    sim.run()
    return sim, net, tracer


def test_tracer_records_lifetimes():
    sim, net, tracer = run_two_flows()
    assert len(tracer.events) == 2
    assert len(tracer.completed) == 2
    by_name = {e.name: e for e in tracer.events}
    assert by_name["short"].duration == pytest.approx(2.0)
    assert by_name["long"].duration == pytest.approx(6.0)
    assert by_name["long"].mean_rate == pytest.approx(500.0 / 6.0)
    assert by_name["short"].links == ["pipe"]


def test_tracer_slowest_ordering_and_summary():
    _, _, tracer = run_two_flows()
    slowest = tracer.slowest(1)
    assert slowest[0].name == "long"
    text = tracer.summary()
    assert "2 flows traced" in text
    assert "long" in text


def test_tracer_prefix_grouping():
    _, _, tracer = run_two_flows()
    assert tracer.by_prefix() == {"short": 1, "long": 1}


def test_tracer_detach_stops_recording():
    sim = Simulator()
    net = FlowNetwork(sim)
    link = net.add_link("pipe", 10.0)
    tracer = FlowTracer(net).attach()
    tracer.detach()

    def driver():
        flow = net.transfer(10.0, [(link, 1.0)])
        yield flow.done

    sim.process(driver())
    sim.run()
    assert tracer.events == []


def test_tracer_context_manager():
    sim = Simulator()
    net = FlowNetwork(sim)
    link = net.add_link("pipe", 10.0)
    with FlowTracer(net) as tracer:
        def driver():
            flow = net.transfer(10.0, [(link, 1.0)])
            yield flow.done
        sim.process(driver())
        sim.run()
    assert len(tracer.completed) == 1
    assert net.transfer.__name__ != "traced_transfer"


def test_two_tracers_attach_concurrently():
    """The on_transfer callback API allows several tracers at once, and
    detaching one never disturbs the other (impossible with the old
    monkey-patching design, where detach could restore a stale method)."""
    sim = Simulator()
    net = FlowNetwork(sim)
    link = net.add_link("pipe", 10.0)
    first = FlowTracer(net).attach()
    second = FlowTracer(net).attach()

    def driver(name):
        flow = net.transfer(10.0, [(link, 1.0)], name=name)
        yield flow.done

    sim.process(driver("one"))
    sim.run()
    assert [e.name for e in first.events] == ["one"]
    assert [e.name for e in second.events] == ["one"]

    first.detach()
    sim.process(driver("two"))
    sim.run()
    assert [e.name for e in first.events] == ["one"]
    assert [e.name for e in second.events] == ["one", "two"]
    second.detach()
    assert net.on_transfer == []


def test_tracer_attach_and_detach_idempotent():
    sim = Simulator()
    net = FlowNetwork(sim)
    tracer = FlowTracer(net)
    tracer.attach()
    tracer.attach()
    assert len(net.on_transfer) == 1
    tracer.detach()
    tracer.detach()
    assert net.on_transfer == []


def test_tracer_zero_size_flow():
    sim = Simulator()
    net = FlowNetwork(sim)
    link = net.add_link("pipe", 10.0)
    tracer = FlowTracer(net).attach()
    net.transfer(0.0, [(link, 1.0)], name="empty")
    assert tracer.events[0].finished_at == 0.0
    assert tracer.events[0].mean_rate is None


def test_utilization_report_orders_hot_links():
    sim = Simulator()
    net = FlowNetwork(sim)
    hot = net.add_link("hot", 10.0)
    cold = net.add_link("cold", 1000.0)

    def driver():
        flow = net.transfer(100.0, [(hot, 1.0), (cold, 1.0)])
        yield flow.done

    sim.process(driver())
    sim.run()
    report = utilization_report(net, elapsed=sim.now)
    lines = report.splitlines()
    assert "hot" in lines[1]  # hottest first
    assert "100.0%" in lines[1]


def test_tracer_on_real_workload():
    """Trace an actual IOR run and find the expected flow families."""
    from repro.hardware import Cluster
    from repro.workloads.common import DaosEnv, WorkloadConfig
    from repro.workloads.ior import run_ior

    env = DaosEnv(Cluster(n_servers=2, n_clients=1, seed=0))
    tracer = FlowTracer(env.cluster.net).attach()
    cfg = WorkloadConfig(n_client_nodes=1, ppn=2, ops_per_process=4)
    run_ior(env, cfg, "DAOS")
    prefixes = tracer.by_prefix()
    assert any("daos@" in p for p in prefixes)
    report = utilization_report(env.cluster.net, elapsed=env.cluster.sim.now, top=5)
    assert "capacity" in report
