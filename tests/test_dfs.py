"""libdfs: POSIX semantics on DAOS objects."""

import pytest

from repro.daos import DaosClient, Pool
from repro.dfs import Dfs, DirEntry
from repro.dfs.entry import KIND_FILE, KIND_SYMLINK
from repro.errors import ExistsError, IntegrityError, InvalidArgumentError, NotFoundError
from repro.hardware import Cluster
from repro.units import KiB


@pytest.fixture()
def env():
    cluster = Cluster(n_servers=4, n_clients=1, seed=0)
    pool = Pool(cluster)
    client = DaosClient(cluster, pool, cluster.clients[0])
    cont = pool.create_container("posix")
    dfs = Dfs(client, cont, chunk_size=4 * KiB)
    return cluster, dfs


def drive(cluster, gen):
    proc = cluster.sim.process(gen)
    cluster.sim.run()
    return proc.result


def test_mount_creates_root(env):
    cluster, dfs = env
    drive(cluster, dfs.mount())
    assert dfs.root is not None


def test_unmounted_operations_rejected(env):
    cluster, dfs = env

    def flow():
        yield from dfs.create("/f")

    with pytest.raises(InvalidArgumentError):
        drive(cluster, flow())


def test_create_write_read_roundtrip(env):
    cluster, dfs = env
    payload = bytes(range(256)) * 64

    def flow():
        yield from dfs.mount()
        fh = yield from dfs.create("/data.bin")
        yield from dfs.write(fh, 0, payload)
        data = yield from dfs.read(fh, 0, len(payload))
        return data

    assert drive(cluster, flow()) == payload


def test_open_existing_file(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        fh = yield from dfs.create("/a")
        yield from dfs.write(fh, 0, b"hello")
        yield from dfs.release(fh)
        fh2 = yield from dfs.open("/a")
        return (yield from dfs.read(fh2, 0, 5))

    assert drive(cluster, flow()) == b"hello"


def test_nested_directories(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        yield from dfs.mkdir("/a")
        yield from dfs.mkdir("/a/b")
        yield from dfs.mkdir("/a/b/c")
        fh = yield from dfs.create("/a/b/c/deep.txt")
        yield from dfs.write(fh, 0, b"deep")
        return (yield from dfs.readdir("/a/b"))

    assert drive(cluster, flow()) == ["c"]


def test_mkdir_missing_parent(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        yield from dfs.mkdir("/no/such/parent")

    with pytest.raises(NotFoundError):
        drive(cluster, flow())


def test_duplicate_create_rejected(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        yield from dfs.create("/f")
        yield from dfs.create("/f")

    with pytest.raises(ExistsError):
        drive(cluster, flow())


def test_stat_file_and_dir(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        yield from dfs.mkdir("/d")
        fh = yield from dfs.create("/d/f", mode=0o600)
        yield from dfs.write(fh, 0, b"x" * 1234)
        kind, size, mode = yield from dfs.stat("/d/f")
        return kind, size, mode

    kind, size, mode = drive(cluster, flow())
    assert kind == KIND_FILE
    assert size == 1234
    assert mode == 0o600


def test_unlink_file(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        fh = yield from dfs.create("/gone")
        yield from dfs.write(fh, 0, b"bye")
        yield from dfs.unlink("/gone")
        return (yield from dfs.exists("/gone"))

    assert drive(cluster, flow()) is False


def test_unlink_directory_rejected(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        yield from dfs.mkdir("/d")
        yield from dfs.unlink("/d")

    with pytest.raises(InvalidArgumentError):
        drive(cluster, flow())


def test_rmdir(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        yield from dfs.mkdir("/d")
        yield from dfs.rmdir("/d")
        return (yield from dfs.exists("/d"))

    assert drive(cluster, flow()) is False


def test_rmdir_nonempty_rejected(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        yield from dfs.mkdir("/d")
        yield from dfs.create("/d/f")
        yield from dfs.rmdir("/d")

    with pytest.raises(InvalidArgumentError):
        drive(cluster, flow())


def test_symlink_followed_on_open(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        fh = yield from dfs.create("/real")
        yield from dfs.write(fh, 0, b"via-link")
        yield from dfs.symlink("/link", "/real")
        target = yield from dfs.readlink("/link")
        fh2 = yield from dfs.open("/link")
        data = yield from dfs.read(fh2, 0, 8)
        return target, data

    target, data = drive(cluster, flow())
    assert target == "/real"
    assert data == b"via-link"


def test_symlink_loop_detected(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        yield from dfs.symlink("/a", "/b")
        yield from dfs.symlink("/b", "/a")
        yield from dfs.open("/a")

    with pytest.raises(InvalidArgumentError):
        drive(cluster, flow())


def test_relative_path_rejected(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        yield from dfs.create("relative.txt")

    with pytest.raises(InvalidArgumentError):
        drive(cluster, flow())


def test_closed_handle_rejected(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        fh = yield from dfs.create("/f")
        yield from dfs.release(fh)
        yield from dfs.write(fh, 0, b"x")

    with pytest.raises(InvalidArgumentError):
        drive(cluster, flow())


def test_readdir_lists_everything(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        for name in ("zz", "aa", "mm"):
            yield from dfs.create(f"/{name}")
        yield from dfs.mkdir("/sub")
        return (yield from dfs.readdir("/"))

    assert drive(cluster, flow()) == ["aa", "mm", "sub", "zz"]


def test_deep_path_lookup_costs_per_component(env):
    cluster, dfs = env

    def build():
        yield from dfs.mount()
        yield from dfs.mkdir("/a")
        yield from dfs.mkdir("/a/b")
        fh = yield from dfs.create("/a/b/f")
        yield from dfs.release(fh)

    drive(cluster, build())

    def timed(path):
        t0 = cluster.sim.now
        yield from dfs.open(path)
        return cluster.sim.now - t0

    deep = drive(cluster, timed("/a/b/f"))

    def build_shallow():
        fh = yield from dfs.create("/g")
        yield from dfs.release(fh)

    drive(cluster, build_shallow())
    shallow = drive(cluster, timed("/g"))
    assert deep > shallow  # two extra component lookups


def test_dir_entry_codec_roundtrip():
    from repro.daos.oid import ObjectId

    entry = DirEntry(
        kind=KIND_SYMLINK,
        oid=ObjectId(0xDEAD, 0xBEEF),
        mode=0o777,
        chunk_size=1 << 20,
        symlink_target="/x/y/z",
    )
    assert DirEntry.unpack(entry.pack()) == entry


def test_dir_entry_bad_magic():
    with pytest.raises(IntegrityError):
        DirEntry.unpack(b"XXXXgarbage")


def test_rename_file(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        fh = yield from dfs.create("/old")
        yield from dfs.write(fh, 0, b"moved-bytes")
        yield from dfs.mkdir("/dir")
        yield from dfs.rename("/old", "/dir/new")
        gone = yield from dfs.exists("/old")
        fh2 = yield from dfs.open("/dir/new")
        data = yield from dfs.read(fh2, 0, 11)
        return gone, data

    gone, data = drive(cluster, flow())
    assert gone is False
    assert data == b"moved-bytes"


def test_rename_refuses_overwrite(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        yield from dfs.create("/a")
        yield from dfs.create("/b")
        yield from dfs.rename("/a", "/b")

    with pytest.raises(ExistsError):
        drive(cluster, flow())


def test_rename_directory_moves_subtree(env):
    cluster, dfs = env

    def flow():
        yield from dfs.mount()
        yield from dfs.mkdir("/d")
        yield from dfs.create("/d/f")
        yield from dfs.rename("/d", "/e")
        return (yield from dfs.readdir("/e"))

    assert drive(cluster, flow()) == ["f"]
