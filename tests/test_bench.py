"""Benchmark pipeline: BENCH document collection and the comparator's
regression verdicts (identical files pass; drift and slowdowns fail)."""

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness.bench import (
    BENCH_SCHEMA,
    bench_filename,
    collect_bench,
    figure_record,
    write_bench,
)

TOOL = Path(__file__).resolve().parent.parent / "tools" / "bench_compare.py"


def run_compare(*argv):
    proc = subprocess.run(
        [sys.executable, str(TOOL), *map(str, argv)],
        capture_output=True, text=True, timeout=120,
    )
    return proc.returncode, proc.stdout + proc.stderr


# -- collection ------------------------------------------------------------------


def test_collect_bench_hw_figure():
    doc = collect_bench(figures=["HW"], sha="testsha")
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["git_sha"] == "testsha"
    assert doc["scale"] == "quick"
    rec = doc["figures"]["HW"]
    assert rec["wall_seconds"] > 0
    assert rec["events"] > 0
    assert rec["events_per_second"] > 0
    # schema-3 engine fields ride along via simprof
    assert rec["recomputes"] > 0
    assert rec["recomputes_per_second"] > 0
    assert rec["peak_queue_depth"] > 0
    assert rec["checks_total"] >= 1
    assert rec["series"], "expected at least one recorded series"
    for series in rec["series"].values():
        assert len(series["xs"]) == len(series["means"]) == len(series["stds"])
    json.dumps(doc)  # JSON-safe


def test_bench_filename_uses_sha():
    assert bench_filename("abc1234") == "BENCH_abc1234.json"


def test_figure_record_flattens_panels():
    class S:
        def __init__(self, label):
            self.label = label
            self.xs, self.means, self.stds = [1.0], [2.0], [0.0]
            self.unit = "GiB/s"

    class R:
        title = "t"
        panels = {"write": [S("a")], "read": [S("b")]}
        checks = []

    rec = figure_record(R(), wall_seconds=2.0, events=100)
    assert set(rec["series"]) == {"write/a", "read/b"}
    assert rec["events_per_second"] == pytest.approx(50.0)


# -- comparator ------------------------------------------------------------------


@pytest.fixture(scope="module")
def bench_doc():
    return collect_bench(figures=["HW"], sha="base")


def test_identical_files_pass(tmp_path, bench_doc):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    write_bench(bench_doc, str(a))
    write_bench(bench_doc, str(b))
    code, out = run_compare(a, b)
    assert code == 0, out
    assert "no regressions" in out


def test_wall_clock_regression_fails(tmp_path, bench_doc):
    slow = copy.deepcopy(bench_doc)
    for rec in slow["figures"].values():
        rec["wall_seconds"] *= 2.0
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    write_bench(bench_doc, str(a))
    write_bench(slow, str(b))
    code, out = run_compare(a, b)
    assert code == 1
    assert "wall-clock regression" in out
    # a higher tolerance lets the same diff pass
    code, out = run_compare(a, b, "--wall-tolerance", "2.0")
    assert code == 0, out


def test_modelled_drift_fails_at_any_magnitude(tmp_path, bench_doc):
    drifted = copy.deepcopy(bench_doc)
    rec = next(iter(drifted["figures"].values()))
    name = next(iter(rec["series"]))
    rec["series"][name]["means"][0] *= 1.0 + 1e-6  # far below 10%
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    write_bench(bench_doc, str(a))
    write_bench(drifted, str(b))
    code, out = run_compare(a, b)
    assert code == 1
    assert "modelled drift" in out


def test_engine_counter_drift_fails(tmp_path, bench_doc):
    drifted = copy.deepcopy(bench_doc)
    rec = next(iter(drifted["figures"].values()))
    rec["recomputes"] += 1
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    write_bench(bench_doc, str(a))
    write_bench(drifted, str(b))
    code, out = run_compare(a, b)
    assert code == 1
    assert "modelled counter 'recomputes'" in out


def test_engine_rate_slowdown_fails_but_speedup_passes(tmp_path, bench_doc):
    slow = copy.deepcopy(bench_doc)
    for rec in slow["figures"].values():
        rec["events_per_second"] *= 0.5
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    write_bench(bench_doc, str(a))
    write_bench(slow, str(b))
    code, out = run_compare(a, b)
    assert code == 1
    assert "events_per_second regression" in out
    # the mirror-image speedup is only informational
    code, out = run_compare(b, a)
    assert code == 0, out


def test_drift_table_ranks_worst_mismatch_first(tmp_path, bench_doc):
    drifted = copy.deepcopy(bench_doc)
    rec = next(iter(drifted["figures"].values()))
    names = sorted(rec["series"])
    # two drifted series: 50% on the first, 0.1% on the second — the
    # table must lead with the larger relative delta
    rec["series"][names[0]]["means"][0] *= 1.5
    if len(names) > 1:
        rec["series"][names[1]]["means"][0] *= 1.001
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    write_bench(bench_doc, str(a))
    write_bench(drifted, str(b))
    code, out = run_compare(a, b)
    assert code == 1
    assert "drifted value(s):" in out
    table = out[out.index("drifted value(s):"):].splitlines()
    assert "counter" in table[1] and "baseline" in table[1] and "delta" in table[1]
    assert f"{names[0]}[0]" in table[3]  # worst drift leads
    # --top caps the rows
    code, out = run_compare(a, b, "--top", "1")
    assert out.count("+50") == 1 and f"{names[0]}[0]" in out


def test_schema_2_baseline_still_comparable(tmp_path, bench_doc):
    old = copy.deepcopy(bench_doc)
    old["schema"] = 2
    for rec in old["figures"].values():
        for key in ("recomputes", "recomputes_per_second", "peak_queue_depth"):
            rec.pop(key)
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    write_bench(old, str(a))
    write_bench(bench_doc, str(b))
    code, out = run_compare(a, b)
    assert code == 0, out


def test_missing_baseline_prints_seeding_hint(tmp_path, bench_doc):
    b = tmp_path / "b.json"
    write_bench(bench_doc, str(b))
    code, out = run_compare(tmp_path / "missing_baseline.json", b)
    assert code == 2
    assert "no baseline found" in out
    assert "repro.harness.bench" in out
    assert "benchmarks/" in out


def test_missing_figure_fails(tmp_path, bench_doc):
    pruned = copy.deepcopy(bench_doc)
    pruned["figures"] = {}
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    write_bench(bench_doc, str(a))
    write_bench(pruned, str(b))
    code, out = run_compare(a, b)
    assert code == 1
    assert "missing" in out


def test_unreadable_or_bad_schema_is_distinct_error(tmp_path, bench_doc):
    a = tmp_path / "a.json"
    write_bench(bench_doc, str(a))
    code, _ = run_compare(a, tmp_path / "nonexistent.json")
    assert code == 2
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": 99, "figures": {}}')
    code, out = run_compare(a, bad)
    assert code == 2
    assert "schema" in out
