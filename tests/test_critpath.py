"""Critical-path attribution: binding tracking in the flow network and
the resource-share analysis over recorded runs."""

import pytest

from repro.harness.experiment import PointSpec, run_point
from repro.hardware.cluster import Cluster
from repro.obs import Observability, activated
from repro.obs.critpath import (
    CLIENT_CPU,
    aggregate_shares,
    analyze_critical_path,
    classify_constraint,
    render_critical_path,
)
from repro.sim.core import Simulator
from repro.sim.flownet import FlowNetwork


# -- constraint classification ---------------------------------------------------


def test_classify_constraint():
    assert classify_constraint("cap") == "client stream cap"
    assert classify_constraint("srv0.ssdagg.w") == "server SSD (write)"
    assert classify_constraint("srv3.ssd7.r") == "server SSD (read)"
    assert classify_constraint("srv1.nic.rx") == "server NIC (fabric)"
    assert classify_constraint("cli4.nic.tx") == "client NIC"
    assert classify_constraint("dfuse.cli0.1") == "FUSE daemon"
    assert classify_constraint("lustre.mds") == "metadata service"
    assert classify_constraint("ceph.mon") == "metadata service"
    assert classify_constraint("pool.rsvc") == "metadata service"
    assert classify_constraint("pool.eng3.md") == "metadata service"
    assert classify_constraint("osd.srv0.3.ops") == "metadata service"
    assert classify_constraint("weird.link").startswith("other")


# -- binding tracking in the flow network ----------------------------------------


def test_binding_tracks_saturated_link():
    sim = Simulator()
    net = FlowNetwork(sim)
    net.track_binding = True
    narrow = net.add_link("srv0.ssdagg.w", 100.0)
    wide = net.add_link("cli0.nic.tx", 1000.0)
    flow = net.transfer(200.0, [(narrow, 1.0), (wide, 1.0)], name="f")
    sim.run()
    # the narrow link is the binding constraint for the whole 2 s
    assert flow.bound_time == pytest.approx({"srv0.ssdagg.w": 2.0})


def test_binding_tracks_demand_cap():
    sim = Simulator()
    net = FlowNetwork(sim)
    net.track_binding = True
    link = net.add_link("cli0.nic.tx", 1000.0)
    flow = net.transfer(100.0, [(link, 1.0)], demand_cap=50.0, name="f")
    sim.run()
    assert flow.bound_time == pytest.approx({"cap": 2.0})


def test_binding_shifts_when_contention_changes():
    """Two flows sharing a link: while both run the shared link binds;
    after one finishes the survivor becomes demand-capped."""
    sim = Simulator()
    net = FlowNetwork(sim)
    net.track_binding = True
    shared = net.add_link("srv0.nic.rx", 100.0)
    # f1: 50 units at fair share 50 u/s -> finishes at t=1
    net.transfer(50.0, [(shared, 1.0)], name="f1")
    # f2: 50+30 units; 50 u/s until t=1, then capped at 60 u/s
    f2 = net.transfer(80.0, [(shared, 1.0)], demand_cap=60.0, name="f2")
    sim.run()
    assert f2.bound_time["srv0.nic.rx"] == pytest.approx(1.0)
    assert f2.bound_time["cap"] == pytest.approx(0.5)


def test_binding_untracked_by_default():
    sim = Simulator()
    net = FlowNetwork(sim)
    link = net.add_link("x", 100.0)
    flow = net.transfer(100.0, [(link, 1.0)], name="f")
    sim.run()
    assert flow.bound_time is None and flow.binding is None


# -- analysis over real runs -----------------------------------------------------


def small_spec(**kwargs):
    defaults = dict(
        workload="ior", store="daos", api="DFS",
        n_servers=2, n_client_nodes=2, ppn=4, ops_per_process=8,
    )
    defaults.update(kwargs)
    return PointSpec(**defaults)


def test_attribution_sums_to_elapsed():
    o = Observability()
    run_point(small_spec(), reps=2, obs=o)
    o.finalize()
    runs = analyze_critical_path(o)
    assert len(runs) == 2
    for run in runs:
        assert run.elapsed > 0
        total = sum(s.seconds for s in run.shares)
        assert total == pytest.approx(run.elapsed, rel=1e-6)
        assert sum(s.fraction for s in run.shares) == pytest.approx(1.0, rel=1e-6)
        assert run.phases, "expected workload phase windows"


def test_ior_write_attributed_to_server_ssd():
    """The paper's claim, as attribution: a saturating IOR write run is
    dominated by the server SSD write channel."""
    o = Observability()
    run_point(small_spec(api="DAOS", ppn=8, ops_per_process=16), reps=1, obs=o)
    o.finalize()
    (run,) = analyze_critical_path(o)
    write_phase = next(p for p in run.phases if p.phase == "write")
    top = write_phase.top(1)[0]
    assert top.resource == "server SSD (write)"


def test_flows_without_phase_spans_still_attributed():
    """Bare flows (no workload spans): attribution falls back to the
    global binding decomposition over the whole run."""
    o = Observability()
    with activated(o):
        cluster = Cluster(n_servers=1, n_clients=1, seed=0)
    link = cluster.net.link("srv0.ssdagg.w")  # the cluster built this one
    cluster.net.transfer(link.capacity, [(link, 1.0)], name="f")
    cluster.sim.run()
    o.finalize()
    (run,) = analyze_critical_path(o)
    assert run.phases == []
    assert run.shares[0].resource == "server SSD (write)"
    assert run.shares[0].seconds == pytest.approx(run.elapsed)


def test_zero_elapsed_run_skipped():
    o = Observability()
    with activated(o):
        cluster = Cluster(n_servers=1, n_clients=1, seed=0)
    o.finalize_run(cluster)  # never ran: elapsed == 0
    assert analyze_critical_path(o) == []
    assert render_critical_path(o) == ""


def test_aggregate_and_render():
    o = Observability()
    run_point(small_spec(), reps=2, obs=o)
    o.finalize()
    runs = analyze_critical_path(o)
    rows = aggregate_shares(runs)
    assert rows == sorted(rows, key=lambda r: r.seconds, reverse=True)
    assert sum(r.fraction for r in rows) == pytest.approx(1.0, rel=1e-6)
    text = render_critical_path(o, per_run=True)
    assert "critical-path attribution (2 run(s)" in text
    assert "what to speed up first:" in text
    assert "run 0" in text and "run 1" in text
    assert CLIENT_CPU in text or "server" in text
