"""simlint: positive (fires) and negative (clean) fixtures per rule,
suppression behaviour, reporters, config, and exit codes."""

import json
import textwrap

import pytest

from repro.lint import LintConfig, lint_paths
from repro.lint.cli import main as lint_main
from repro.lint.config import load_config
from repro.lint.findings import Severity
from repro.lint.suppress import parse_pragma


@pytest.fixture()
def lint(tmp_path, monkeypatch):
    """Write a {relpath: source} dict into a tmp tree and lint it."""

    def run(files, config=None, paths=None):
        for rel, src in files.items():
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(textwrap.dedent(src))
        monkeypatch.chdir(tmp_path)
        return lint_paths(paths or ["."], config=config)

    return run


def codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------- SL001


def test_sl001_wallclock_fires(lint):
    findings = lint({"model.py": """
        import time
        from time import perf_counter

        def cost():
            return time.time() + perf_counter()
    """})
    assert codes(findings) == ["SL001", "SL001"]
    assert "wall-clock" in findings[0].message


def test_sl001_datetime_and_aliases(lint):
    findings = lint({"model.py": """
        import time as t
        from datetime import datetime

        def stamp():
            return t.monotonic(), datetime.now()
    """})
    assert codes(findings) == ["SL001", "SL001"]


def test_sl001_allowlist_and_sim_time_clean(lint):
    findings = lint({
        "harness/bench.py": """
            import time

            def wall():
                return time.perf_counter()
        """,
        "model.py": """
            def now(sim):
                return sim.now
        """,
    })
    assert findings == []


def test_sl001_executor_allowed_other_harness_files_not(lint):
    # the executor's wall-clock reporting is allowlisted, but the
    # exemption is per-file: any other harness module reading the host
    # clock still trips SL001
    findings = lint({
        "harness/executor.py": """
            import time

            def run_tasks():
                return time.perf_counter()
        """,
        "harness/scheduler.py": """
            import time

            def deadline():
                return time.perf_counter()
        """,
    })
    assert codes(findings) == ["SL001"]
    assert findings[0].path.endswith("harness/scheduler.py")


def test_sl001_obs_profile_allowed_rest_of_obs_not(lint):
    # simprof concentrates every engine-profiling clock read in
    # obs/profile.py, which is allowlisted; any other obs/ module
    # reading the host clock still trips SL001
    findings = lint({
        "obs/profile.py": """
            import time

            def dispatch_begin():
                return time.perf_counter()
        """,
        "obs/metrics.py": """
            import time

            def observe_now():
                return time.perf_counter()
        """,
    })
    assert codes(findings) == ["SL001"]
    assert findings[0].path.endswith("obs/metrics.py")


def test_sl001_resilience_allowed_other_harness_files_not(lint):
    # the resilient executor legitimately reads the host clock (per-point
    # deadlines, retry backoff are wall-clock concepts), so
    # harness/resilience.py is allowlisted — but the exemption stays
    # per-file: a new harness module reading the clock still trips SL001
    findings = lint({
        "harness/resilience.py": """
            import time

            def deadline():
                return time.monotonic()
        """,
        "harness/watchdog.py": """
            import time

            def poll():
                return time.monotonic()
        """,
    })
    assert codes(findings) == ["SL001"]
    assert findings[0].path.endswith("harness/watchdog.py")


# ---------------------------------------------------------------- SL002


def test_sl002_random_import_fires(lint):
    findings = lint({"model.py": """
        import random

        def roll():
            return random.random()
    """})
    assert "SL002" in codes(findings)


def test_sl002_numpy_random_fires(lint):
    findings = lint({"model.py": """
        import numpy as np

        def make():
            return np.random.default_rng(0)
    """})
    assert codes(findings) == ["SL002"]
    assert "numpy.random.default_rng" in findings[0].message


def test_sl002_allowlist_and_injected_stream_clean(lint):
    findings = lint({
        "sim/randomness.py": """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
        """,
        "model.py": """
            def jitter(rng):
                return rng.normal(0.0, 0.1)
        """,
    })
    assert findings == []


# ---------------------------------------------------------------- SL003


def test_sl003_float_equality_fires(lint):
    findings = lint({"model.py": """
        def check(bw, a, b):
            return bw == 6.25 or (a / b) != 1
    """})
    assert codes(findings) == ["SL003", "SL003"]


def test_sl003_isclose_and_int_compare_clean(lint):
    findings = lint({"model.py": """
        import math

        def check(bw, n):
            return math.isclose(bw, 6.25) and n == 1
    """})
    assert findings == []


def test_sl003_exact_justification_comment(lint):
    findings = lint({"model.py": """
        def check(sigma):
            return sigma == 0.0  # exact: untouched default, never computed
    """})
    assert findings == []


# ---------------------------------------------------------------- SL004


def test_sl004_unguarded_access_fires(lint):
    findings = lint({"model.py": """
        def report(obs):
            return obs.registry
    """})
    assert codes(findings) == ["SL004"]
    assert "is not None" in findings[0].message


def test_sl004_self_attr_unguarded_fires(lint):
    findings = lint({"model.py": """
        class Client:
            def op(self):
                self._obs.tracer.record("x")
    """})
    assert codes(findings) == ["SL004"]


def test_sl004_guard_forms_clean(lint):
    findings = lint({"model.py": """
        def a(obs):
            if obs is not None:
                obs.registry.counter("x")

        def b(obs):
            if obs is None:
                return 0
            return obs.run_index

        def c(obs):
            return obs.node_tid(0) if obs is not None else 0

        def d(obs):
            return obs is not None and obs.run_index > 0

        def e(obs):
            assert obs is not None
            return obs.registry

        def f():
            obs = Observability()
            return obs.registry
    """})
    assert findings == []


def test_sl004_proxy_guard_clean(lint):
    # the span/obs pairing the workload runners use
    findings = lint({"model.py": """
        def run(obs):
            span = None
            if obs is not None:
                span = obs.tracer.begin("phase")
            work()
            if span is not None:
                obs.tracer.finish(span)
    """})
    assert findings == []


def test_sl004_annotation_contract(lint):
    findings = lint({"model.py": """
        def strict(obs: "Observability"):
            return obs.registry

        def loose(obs: "Optional[Observability]" = None):
            return obs.registry
    """})
    assert codes(findings) == ["SL004"]
    assert "loose" in findings[0].message


def test_sl004_module_import_not_a_binding(lint):
    findings = lint({"model.py": """
        import repro.obs

        def active():
            return repro.obs.current()
    """})
    assert findings == []


def test_sl004_guard_does_not_leak_into_else(lint):
    findings = lint({"model.py": """
        def f(obs):
            if obs is not None:
                pass
            else:
                obs.registry.counter("x")
    """})
    assert codes(findings) == ["SL004"]


# ---------------------------------------------------------------- SL005


def test_sl005_probe_scheduling_fires(lint):
    findings = lint({"model.py": """
        class Sampler:
            def on_advance(self, t):
                self.sim.schedule(0.0, self._cb)

        def attach(sim, sampler):
            sim.time_probe = sampler.on_advance
    """})
    assert codes(findings) == ["SL005"]
    assert "on_advance" in findings[0].message


def test_sl005_one_level_walk_fires(lint):
    findings = lint({"model.py": """
        class Sampler:
            def on_advance(self, t):
                self._flush()

            def _flush(self):
                self.net.transfer(1.0, [], name="bad")

        def attach(sim, sampler):
            sim.time_probe = sampler.on_advance
    """})
    assert codes(findings) == ["SL005"]
    assert "_flush" in findings[0].message


def test_sl005_pure_probe_clean(lint):
    findings = lint({"model.py": """
        class Sampler:
            def on_advance(self, t):
                self.samples.append((t, len(self.net.active_flows)))

        def attach(sim, sampler):
            sim.time_probe = sampler.on_advance
    """})
    assert findings == []


def test_sl005_lambda_registration_fires(lint):
    findings = lint({"model.py": """
        def attach(sim, net, flow):
            sim.time_probe = lambda t: net.cancel(flow)
    """})
    assert codes(findings) == ["SL005"]


def test_sl005_unregistered_function_clean(lint):
    # a function may schedule freely when nothing registers it as probe
    findings = lint({"model.py": """
        class Driver:
            def on_advance(self, t):
                self.sim.schedule(0.0, self._cb)
    """})
    assert findings == []


# ---------------------------------------------------------------- SL006


def test_sl006_broad_except_fires(lint):
    findings = lint({"model.py": """
        def risky():
            try:
                work()
            except Exception:
                pass

        def riskier():
            try:
                work()
            except:
                pass
    """})
    assert codes(findings) == ["SL006", "SL006"]


def test_sl006_narrow_or_reraise_clean(lint):
    findings = lint({"model.py": """
        def narrow():
            try:
                work()
            except ValueError:
                pass

        def reraises():
            try:
                work()
            except Exception:
                log()
                raise
    """})
    assert findings == []


# ---------------------------------------------------------------- SL009


def test_sl009_swallowed_dataloss_fires(lint):
    findings = lint({"model.py": """
        from repro.errors import DataLossError

        def swallow():
            try:
                read()
            except DataLossError:
                pass

        def swallow_docstring_continue():
            for chunk in chunks:
                try:
                    read(chunk)
                except DataLossError:
                    "gone anyway"
                    continue
    """})
    assert codes(findings) == ["SL009", "SL009"]
    assert "redundancy" in findings[0].message


def test_sl009_dotted_and_tuple_forms_fire(lint):
    findings = lint({"model.py": """
        import repro.errors as errors

        def swallow():
            try:
                read()
            except (OSError, errors.DataLossError):
                pass
    """})
    assert codes(findings) == ["SL009"]


def test_sl009_recording_or_reraise_clean(lint):
    findings = lint({"model.py": """
        from repro.errors import DataLossError

        def records(recorder):
            try:
                read()
            except DataLossError:
                recorder.record_lost("read", 0.0, 0.0)

        def reraises():
            try:
                read()
            except DataLossError:
                cleanup()
                raise

        def other_error_is_sl009s_business_not_this():
            try:
                read()
            except KeyError:
                pass
    """})
    assert findings == []


def test_sl009_suppressible(lint):
    findings = lint({"model.py": """
        from repro.errors import DataLossError

        def probe():
            try:
                read()
            except DataLossError:  # simlint: disable=SL009 -- probing liveness only
                pass
    """})
    assert findings == []


# ---------------------------------------------------------------- SL007


def test_sl007_mutable_default_fires(lint):
    findings = lint({"model.py": """
        def f(xs=[], *, opts={}):
            return xs, opts
    """})
    assert codes(findings) == ["SL007", "SL007"]


def test_sl007_none_default_clean(lint):
    findings = lint({"model.py": """
        def f(xs=None, n=3, name="flow"):
            return xs or []
    """})
    assert findings == []


# ---------------------------------------------------------------- SL010


def test_sl010_bare_op_call_fires(lint):
    findings = lint({"client.py": """
        def write(self, data):
            opx = self._ledger.op("daos.lat.arr-write", self.sim)
            yield self._serial()
            opx.note("serial")
    """})
    assert codes(findings) == ["SL010"]
    assert "with" in findings[0].message


def test_sl010_call_as_argument_fires(lint):
    findings = lint({"client.py": """
        def write(self, data):
            track(self._ledger.op("daos.lat.arr-write", self.sim))
    """})
    assert codes(findings) == ["SL010"]


def test_sl010_with_block_clean(lint):
    findings = lint({"client.py": """
        def write(self, data):
            with self._ledger.op("daos.lat.arr-write", self.sim) as opx:
                yield self._serial()
                opx.note("serial")
    """})
    assert findings == []


def test_sl010_try_finally_close_clean(lint):
    findings = lint({"client.py": """
        def write(self, data):
            opx = self._ledger.op("daos.lat.arr-write", self.sim)
            opx.__enter__()
            try:
                yield self._serial()
            finally:
                opx.__exit__(None, None, None)
    """})
    assert findings == []


def test_sl010_unclosed_assignment_fires(lint):
    findings = lint({"client.py": """
        def write(self, data):
            opx = self._ledger.op("daos.lat.arr-write", self.sim)
            try:
                yield self._serial()
            finally:
                self.cleanup()
    """})
    assert codes(findings) == ["SL010"]
    assert "never closed" in findings[0].message


def test_sl010_other_op_methods_clean(lint):
    findings = lint({"client.py": """
        def write(self, data, ledger):
            self._tracker.op("not-a-ledger")
            with ledger.op("kv-put", sim):
                pass
    """})
    assert findings == []


# ------------------------------------------------------- suppressions


def test_suppression_silences_finding(lint):
    findings = lint({"model.py": """
        def risky():
            try:
                work()
            except Exception:  # simlint: disable=SL006 -- best-effort cleanup
                pass
    """})
    assert findings == []


def test_bare_disable_silences_all_rules_on_line(lint):
    findings = lint({"model.py": """
        import random  # simlint: disable
    """})
    assert findings == []


def test_unused_suppression_reported(lint):
    findings = lint({"model.py": """
        def fine():  # simlint: disable=SL006
            return 1
    """})
    assert codes(findings) == ["SL008"]
    assert "unused suppression" in findings[0].message


def test_suppression_for_wrong_rule_does_not_silence(lint):
    findings = lint({"model.py": """
        import random  # simlint: disable=SL006
    """})
    assert sorted(codes(findings)) == ["SL002", "SL008"]


def test_pragma_parsing():
    assert parse_pragma("# simlint: disable=SL001,SL003") == {"SL001", "SL003"}
    assert parse_pragma("# simlint: disable") == {"*"}
    assert parse_pragma("# simlint: disable=SL006 -- justified") == {"SL006"}
    assert parse_pragma("# a normal comment") is None


# -------------------------------------------------- engine mechanics


def test_syntax_error_reported_not_raised(lint):
    findings = lint({"broken.py": "def f(:\n"})
    assert codes(findings) == ["SL000"]


def test_exclude_glob(lint):
    findings = lint(
        {"vendored/junk.py": "import random\n"},
        config=LintConfig(exclude=["vendored/*"]),
    )
    assert findings == []


def test_severity_override_to_warning(lint):
    cfg = LintConfig(severities={"SL007": Severity.WARNING})
    findings = lint({"model.py": "def f(xs=[]):\n    return xs\n"}, config=cfg)
    assert codes(findings) == ["SL007"]
    assert findings[0].severity is Severity.WARNING


def test_select_and_ignore(lint):
    src = {"model.py": "import random\n\ndef f(xs=[]):\n    return xs\n"}
    only = lint(src, config=LintConfig(select=["SL002"]))
    assert codes(only) == ["SL002"]
    skipped = lint(src, config=LintConfig(ignore=["SL002"]))
    assert codes(skipped) == ["SL007"]


def test_load_config_from_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""
        [tool.simlint]
        exclude = ["gen/*"]
        [tool.simlint.severity]
        SL006 = "warning"
    """))
    cfg = load_config(str(tmp_path / "pyproject.toml"))
    assert cfg.exclude == ["gen/*"]
    assert cfg.severities["SL006"] is Severity.WARNING


def test_load_config_rejects_bad_severity(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.simlint.severity]\nSL006 = 'loud'\n"
    )
    with pytest.raises(ValueError):
        load_config(str(tmp_path / "pyproject.toml"))


# ---------------------------------------------------------- CLI layer


def _write(tmp_path, rel, src):
    p = tmp_path / rel
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(textwrap.dedent(src))
    return p


def test_cli_exit_codes(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "clean.py", "def f():\n    return 1\n")
    assert lint_main(["--no-config", "clean.py"]) == 0
    _write(tmp_path, "dirty.py", "import random\n")
    assert lint_main(["--no-config", "dirty.py"]) == 1
    assert lint_main(["--no-config", "missing.py"]) == 2
    capsys.readouterr()


def test_cli_warnings_do_not_fail(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "pyproject.toml", """
        [tool.simlint.severity]
        SL002 = "warning"
    """)
    _write(tmp_path, "dirty.py", "import random\n")
    assert lint_main(["dirty.py"]) == 0
    out = capsys.readouterr().out
    assert "1 warning(s)" in out


def test_cli_json_report(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "dirty.py", "import random\n")
    assert lint_main(["--no-config", "--json", "dirty.py"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["errors"] == 1
    assert doc["findings"][0]["code"] == "SL002"
    assert doc["findings"][0]["path"].endswith("dirty.py")


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SL001", "SL002", "SL003", "SL004", "SL005", "SL006", "SL007"):
        assert code in out


# -------------------------------------- per-code pragma accounting


def test_multi_code_pragma_reports_only_stale_codes(lint):
    # SL002 fires and is silenced; SL006 never fires on that line, so
    # exactly that code is reported stale -- not the whole pragma
    findings = lint({"model.py": """
        import random  # simlint: disable=SL002,SL006
    """})
    assert codes(findings) == ["SL008"]
    assert "SL006" in findings[0].message
    assert "SL002" not in findings[0].message


def test_multi_code_pragma_all_stale_reports_each_code(lint):
    findings = lint({"model.py": """
        x = 1  # simlint: disable=SL001,SL003
    """})
    assert codes(findings) == ["SL008", "SL008"]
    mentioned = {m for f in findings for m in ("SL001", "SL003") if m in f.message}
    assert mentioned == {"SL001", "SL003"}


def test_pragma_for_other_front_ends_code_not_stale(lint):
    # SL011-SL014 belong to simflow; simlint must not judge them
    findings = lint({"model.py": """
        x = 1  # simlint: disable=SL014
    """})
    assert findings == []


# ----------------------------------------------------- finding cache


def test_cache_hits_on_unchanged_file(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "dirty.py", "import random\n")
    cache = str(tmp_path / "cache.json")
    argv = ["--no-config", "--cache", "--cache-file", cache, "dirty.py"]
    assert lint_main(argv) == 1
    assert "0 hit(s), 1 miss(es)" in capsys.readouterr().out
    assert lint_main(argv) == 1  # cached findings still gate the exit code
    assert "1 hit(s), 0 miss(es)" in capsys.readouterr().out


def test_cache_invalidated_when_file_changes(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    path = _write(tmp_path, "model.py", "import random\n")
    cache = str(tmp_path / "cache.json")
    argv = ["--no-config", "--cache", "--cache-file", cache, "model.py"]
    assert lint_main(argv) == 1
    capsys.readouterr()
    path.write_text("def f():\n    return 1\n")
    assert lint_main(argv) == 0
    assert "1 miss(es)" in capsys.readouterr().out


def test_cache_invalidated_when_config_changes(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "dirty.py", "import random\n")
    cache = str(tmp_path / "cache.json")
    assert lint_main(["--no-config", "--cache", "--cache-file", cache, "dirty.py"]) == 1
    capsys.readouterr()
    # a different rule selection must not be served from the stale entry
    assert lint_main([
        "--no-config", "--cache", "--cache-file", cache,
        "--ignore", "SL002", "dirty.py",
    ]) == 0
    assert "1 miss(es)" in capsys.readouterr().out


# ------------------------------------------------------------- SARIF


def test_sarif_report_shape(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "dirty.py", "import random\n")
    assert lint_main(["--no-config", "--sarif", "-", "dirty.py"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "SL002" in rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "SL002"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"].endswith("dirty.py")
    assert loc["region"]["startLine"] == 1


def test_sarif_written_to_file(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "dirty.py", "import random\n")
    out = tmp_path / "report.sarif"
    assert lint_main(["--no-config", "--sarif", str(out), "dirty.py"]) == 1
    capsys.readouterr()
    doc = json.loads(out.read_text())
    assert doc["runs"][0]["results"]


# ------------------------------------------------- repository gate


def test_repository_tree_is_clean():
    """The merged tree must lint clean: src, tools and examples."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    findings = lint_paths(
        [str(root / "src"), str(root / "tools"), str(root / "examples")]
    )
    assert findings == [], "\n".join(f.render() for f in findings)
