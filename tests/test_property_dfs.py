"""Stateful property test: DFS against an in-memory filesystem oracle.

Random sequences of POSIX operations are applied simultaneously to the
simulated DFS (through its full timed path) and to a trivial dict-based
oracle; both must agree on every outcome — success and failure alike.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.daos import DaosClient, Pool
from repro.dfs import Dfs
from repro.errors import ExistsError, InvalidArgumentError, NotFoundError, StorageError
from repro.hardware import Cluster
from repro.units import KiB

NAMES = ("a", "b", "c", "d")
DIRS = ("", "/a", "/b")  # parents used for nesting

op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("mkdir"), st.sampled_from(DIRS), st.sampled_from(NAMES)),
        st.tuples(st.just("create"), st.sampled_from(DIRS), st.sampled_from(NAMES)),
        st.tuples(
            st.just("write"),
            st.sampled_from(DIRS),
            st.sampled_from(NAMES),
            st.binary(min_size=1, max_size=256),
        ),
        st.tuples(st.just("unlink"), st.sampled_from(DIRS), st.sampled_from(NAMES)),
        st.tuples(st.just("rmdir"), st.sampled_from(DIRS), st.sampled_from(NAMES)),
    ),
    max_size=20,
)


class OracleFs:
    """Flat-model oracle: path -> ("dir", {children}) | ("file", bytes)."""

    def __init__(self):
        self.nodes = {"/": ("dir", set())}

    @staticmethod
    def _join(parent, name):
        return (parent.rstrip("/") or "") + "/" + name

    def _parent_ok(self, parent):
        entry = self.nodes.get(parent or "/")
        return entry is not None and entry[0] == "dir"

    def mkdir(self, parent, name):
        path = self._join(parent, name)
        if not self._parent_ok(parent):
            raise NotFoundError(path)
        if path in self.nodes:
            raise ExistsError(path)
        self.nodes[path] = ("dir", set())
        self.nodes[parent or "/"][1].add(name)

    def create(self, parent, name):
        path = self._join(parent, name)
        if not self._parent_ok(parent):
            raise NotFoundError(path)
        if path in self.nodes:
            raise ExistsError(path)
        self.nodes[path] = ("file", b"")
        self.nodes[parent or "/"][1].add(name)

    def write(self, parent, name, data):
        path = self._join(parent, name)
        entry = self.nodes.get(path)
        if entry is None:
            raise NotFoundError(path)
        if entry[0] != "file":  # opening a directory for write
            raise InvalidArgumentError(path)
        self.nodes[path] = ("file", data)

    def unlink(self, parent, name):
        path = self._join(parent, name)
        entry = self.nodes.get(path)
        if entry is None:
            raise NotFoundError(path)
        if entry[0] == "dir":
            raise InvalidArgumentError(path)
        del self.nodes[path]
        self.nodes[parent or "/"][1].discard(name)

    def rmdir(self, parent, name):
        path = self._join(parent, name)
        entry = self.nodes.get(path)
        if entry is None:
            raise NotFoundError(path)
        if entry[0] != "dir":
            raise InvalidArgumentError(path)
        if entry[1]:
            raise InvalidArgumentError(path)
        del self.nodes[path]
        self.nodes[parent or "/"][1].discard(name)

    def files(self):
        return {
            path: data for path, (kind, data) in self.nodes.items() if kind == "file"
        }


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=op_strategy)
def test_dfs_agrees_with_oracle(ops):
    cluster = Cluster(n_servers=2, n_clients=1, seed=0)
    pool = Pool(cluster)
    client = DaosClient(cluster, pool, cluster.clients[0])
    cont = pool.create_container("oracle", materialize=True)
    dfs = Dfs(client, cont, chunk_size=4 * KiB)
    oracle = OracleFs()
    log = []

    def apply_all():
        yield from dfs.mount()
        handles = {}
        for op in ops:
            kind, parent, name = op[0], op[1], op[2]
            path = OracleFs._join(parent, name)
            # run against DFS
            dfs_err = oracle_err = None
            try:
                if kind == "mkdir":
                    yield from dfs.mkdir(path)
                elif kind == "create":
                    handles[path] = yield from dfs.create(path)
                elif kind == "write":
                    fh = handles.get(path)
                    if fh is None or not fh.open:
                        fh = yield from dfs.open(path)
                        handles[path] = fh
                    yield from dfs.write(fh, 0, op[3])
                elif kind == "unlink":
                    yield from dfs.unlink(path)
                    handles.pop(path, None)
                elif kind == "rmdir":
                    yield from dfs.rmdir(path)
            except StorageError as err:
                dfs_err = type(err)
            # run against the oracle
            try:
                if kind == "write":
                    oracle.write(parent, name, op[3])
                else:
                    getattr(oracle, kind)(parent, name)
            except StorageError as err:
                oracle_err = type(err)
            log.append((op, dfs_err, oracle_err))
            assert dfs_err == oracle_err, (op, dfs_err, oracle_err, log)
        # final state comparison: every oracle file readable with same bytes
        for path, data in oracle.files().items():
            fh = yield from dfs.open(path)
            got = yield from dfs.read(fh, 0, max(len(data), 1))
            expect = data if data else b"\0" * 1
            if data:
                assert got == data, path
        return True

    proc = cluster.sim.process(apply_all())
    cluster.sim.run()
    assert proc.result is True
