"""Object class grammar and derived layout properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.daos.objclass import GROUPS_MAX, ObjectClass
from repro.errors import InvalidArgumentError


def test_s1():
    oc = ObjectClass.parse("S1")
    assert oc.groups == 1
    assert oc.group_width == 1
    assert oc.replicas == 1
    assert not oc.is_ec and not oc.is_replicated
    assert oc.write_amplification == 1.0
    assert oc.redundancy == 0


def test_s4():
    oc = ObjectClass.parse("S4")
    assert oc.groups == 4
    assert oc.group_width == 1


def test_sx_resolves_to_all_targets():
    oc = ObjectClass.parse("SX")
    assert oc.groups == GROUPS_MAX
    assert oc.resolve_groups(256) == 256


def test_rp2():
    oc = ObjectClass.parse("RP_2")
    assert oc.replicas == 2
    assert oc.groups == 1
    assert oc.group_width == 2
    assert oc.is_replicated
    assert oc.write_amplification == 2.0
    assert oc.redundancy == 1


def test_rp2_gx():
    oc = ObjectClass.parse("RP_2GX")
    assert oc.groups == GROUPS_MAX
    assert oc.resolve_groups(256) == 128


def test_ec_2p1():
    oc = ObjectClass.parse("EC_2P1")
    assert oc.ec_k == 2 and oc.ec_p == 1
    assert oc.group_width == 3
    assert oc.is_ec
    # Paper Sec III-D: 2+1 EC writes an additional 50% of data volume.
    assert oc.write_amplification == pytest.approx(1.5)
    assert oc.redundancy == 1


def test_ec_4p2_gx():
    oc = ObjectClass.parse("EC_4P2GX")
    assert oc.resolve_groups(256) == 42
    assert oc.write_amplification == pytest.approx(1.5)
    assert oc.redundancy == 2


def test_parse_case_insensitive_and_idempotent():
    oc = ObjectClass.parse("ec_2p1")
    assert oc.name == "EC_2P1"
    assert ObjectClass.parse(oc) is oc


@pytest.mark.parametrize("bad", ["", "S0", "SXX", "RP_0", "EC_2", "EC_0P1", "Q5", "S-1"])
def test_bad_classes_rejected(bad):
    with pytest.raises(InvalidArgumentError):
        ObjectClass.parse(bad)


def test_resolve_groups_pool_too_small():
    oc = ObjectClass.parse("EC_2P1")
    with pytest.raises(InvalidArgumentError):
        oc.resolve_groups(2)


def test_fixed_groups_pass_through():
    assert ObjectClass.parse("S4").resolve_groups(256) == 4
    assert ObjectClass.parse("RP_2G3").resolve_groups(256) == 3


@given(st.integers(1, 64))
def test_sn_groups_roundtrip(n):
    oc = ObjectClass.parse(f"S{n}")
    assert oc.groups == n
    assert oc.resolve_groups(1024) == n


@given(st.integers(2, 8), st.integers(1, 4))
def test_ec_amplification_formula(k, p):
    oc = ObjectClass.parse(f"EC_{k}P{p}")
    assert oc.write_amplification == pytest.approx((k + p) / k)
    assert oc.redundancy == p


def test_ec_over_gf256_rejected():
    with pytest.raises(InvalidArgumentError):
        ObjectClass.parse("EC_200P100")
