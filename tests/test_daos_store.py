"""Functional DAOS store: pool/container/KV/Array semantics, redundancy,
failure injection, reconstruction."""

import pytest

from repro.daos import DaosArray, DaosKV, Pool
from repro.daos.objclass import ObjectClass
from repro.daos.oid import ObjectId
from repro.errors import (
    DataLossError,
    ExistsError,
    InvalidArgumentError,
    NotFoundError,
    UnavailableError,
)
from repro.hardware import Cluster
from repro.units import KiB, MiB


@pytest.fixture()
def pool():
    cluster = Cluster(n_servers=4, n_clients=2, seed=1)
    return Pool(cluster)


def make_array(pool, oc="SX", chunk_size=64 * KiB, label="c0", **props) -> DaosArray:
    cont = pool.create_container(label, **props)
    oid = cont.alloc_oid()
    arr = DaosArray(cont, oid, ObjectClass.parse(oc), chunk_size=chunk_size)
    cont.register(oid, arr)
    return arr


def make_kv(pool, oc="S1", label="ckv") -> DaosKV:
    cont = pool.create_container(label)
    oid = cont.alloc_oid()
    kv = DaosKV(cont, oid, ObjectClass.parse(oc))
    cont.register(oid, kv)
    return kv


# -- pool / container ----------------------------------------------------------


def test_pool_topology(pool):
    assert len(pool.engines) == 4
    assert pool.n_targets == 4 * 16
    # ring interleaves nodes: consecutive entries on different engines
    for a, b in zip(pool.ring, pool.ring[1:]):
        assert a.engine is not b.engine or len(pool.engines) == 1


def test_pool_requires_servers():
    cluster = Cluster(n_servers=1, n_clients=0)
    with pytest.raises(Exception):
        Pool(cluster, server_nodes=[])


def test_container_lifecycle(pool):
    cont = pool.create_container("data")
    assert pool.get_container("data") is cont
    with pytest.raises(ExistsError):
        pool.create_container("data")
    pool.destroy_container("data")
    with pytest.raises(NotFoundError):
        pool.get_container("data")


def test_container_oid_allocation_unique(pool):
    cont = pool.create_container("c")
    oids = {cont.alloc_oid() for _ in range(100)}
    assert len(oids) == 100


def test_container_home_engine_stable(pool):
    cont = pool.create_container("c")
    assert cont.home_engine is cont.home_engine
    assert cont.home_engine in pool.engines


def test_oid_bit_layout():
    oid = ObjectId.from_user(0xABCDEF0123456789ABCDEF, class_id=0x42)
    assert oid.user_bits == 0xABCDEF0123456789ABCDEF
    assert oid.class_id == 0x42
    assert ObjectId(oid.hi, oid.lo) == oid


def test_oid_validation():
    with pytest.raises(InvalidArgumentError):
        ObjectId.from_user(1 << 96)
    with pytest.raises(InvalidArgumentError):
        ObjectId(-1, 0)


# -- KV ---------------------------------------------------------------------------


def test_kv_put_get_roundtrip(pool):
    kv = make_kv(pool)
    kv.put("alpha", b"value-1")
    value, target = kv.get("alpha")
    assert value == b"value-1"
    assert target.alive


def test_kv_overwrite(pool):
    kv = make_kv(pool)
    kv.put("k", b"old")
    kv.put("k", b"new")
    assert kv.get("k")[0] == b"new"


def test_kv_missing_key(pool):
    kv = make_kv(pool)
    with pytest.raises(NotFoundError):
        kv.get("ghost")


def test_kv_remove(pool):
    kv = make_kv(pool)
    kv.put("k", b"v")
    kv.remove("k")
    assert not kv.contains("k")
    with pytest.raises(NotFoundError):
        kv.remove("k")


def test_kv_keys_and_len(pool):
    kv = make_kv(pool, oc="S4")
    for i in range(20):
        kv.put(f"key-{i}", bytes([i]))
    assert len(kv) == 20
    assert kv.keys() == {f"key-{i}" for i in range(20)}


def test_kv_key_validation(pool):
    kv = make_kv(pool)
    with pytest.raises(InvalidArgumentError):
        kv.put("", b"v")
    with pytest.raises(InvalidArgumentError):
        kv.put("x" * 1000, b"v")
    with pytest.raises(InvalidArgumentError):
        kv.put("ok", "not-bytes")


def test_kv_rejects_ec_class(pool):
    cont = pool.create_container("bad")
    with pytest.raises(InvalidArgumentError):
        DaosKV(cont, cont.alloc_oid(), ObjectClass.parse("EC_2P1"))


def test_kv_sharding_spreads_keys(pool):
    kv = make_kv(pool, oc="S16")
    for i in range(200):
        kv.put(f"key-{i}", b"x")
    used_groups = set()
    for i in range(200):
        used_groups.add(kv._group_for(f"key-{i}"))
    assert len(used_groups) > 8  # most of the 16 groups see keys


def test_kv_replicated_survives_target_failure(pool):
    kv = make_kv(pool, oc="RP_2")
    kv.put("important", b"payload")
    primary = kv.groups[kv._group_for("important")][0]
    pool.fail_target(primary.global_index)
    value, server = kv.get("important")
    assert value == b"payload"
    assert server is not primary


def test_kv_unreplicated_fails_on_dead_target(pool):
    kv = make_kv(pool, oc="S1")
    kv.put("k", b"v")
    target = kv.groups[kv._group_for("k")][0]
    pool.fail_target(target.global_index)
    with pytest.raises(DataLossError):
        kv.get("k")
    pool.restore_target(target.global_index)
    # the target came back but its data was wiped (device replacement)
    with pytest.raises(NotFoundError):
        kv.get("k")


def test_kv_put_charges_cover_replicas(pool):
    kv = make_kv(pool, oc="RP_2")
    charges = kv.put("k", b"12345678")
    assert len(charges) == 2
    assert all(nb == 8 for nb in charges.values())


# -- Array -----------------------------------------------------------------------


def test_array_write_read_roundtrip(pool):
    arr = make_array(pool)
    payload = bytes(range(256)) * 16
    arr.write(0, payload)
    data, charges = arr.read(0, len(payload))
    assert data == payload
    assert sum(charges.values()) == len(payload)
    assert arr.size() == len(payload)


def test_array_multi_chunk_roundtrip(pool):
    arr = make_array(pool, chunk_size=4 * KiB)
    payload = bytes((i * 7) % 256 for i in range(40 * KiB))
    arr.write(0, payload)
    assert arr.read(0, len(payload))[0] == payload
    # chunks should hit more than one target under SX
    assert len({t for g in arr.groups for t in g}) == pool.n_targets


def test_array_partial_overwrite(pool):
    arr = make_array(pool, chunk_size=4 * KiB)
    arr.write(0, b"A" * 8192)
    arr.write(1000, b"B" * 100)
    data, _ = arr.read(0, 8192)
    assert data[:1000] == b"A" * 1000
    assert data[1000:1100] == b"B" * 100
    assert data[1100:] == b"A" * (8192 - 1100)


def test_array_unaligned_offsets(pool):
    arr = make_array(pool, chunk_size=4 * KiB)
    arr.write(3000, b"X" * 3000)  # spans a chunk boundary
    data, _ = arr.read(2990, 3020)
    assert data[:10] == b"\0" * 10
    assert data[10:3010] == b"X" * 3000
    assert data[3010:] == b"\0" * 10


def test_array_holes_read_as_zeros(pool):
    arr = make_array(pool, chunk_size=4 * KiB)
    arr.write(10 * 4096, b"end")
    data, charges = arr.read(0, 4096)
    assert data == b"\0" * 4096
    assert charges == {}  # a hole moves no bytes


def test_array_size_tracks_max_extent(pool):
    arr = make_array(pool, chunk_size=4 * KiB)
    assert arr.size() == 0
    arr.write(100, b"x" * 50)
    assert arr.size() == 150
    arr.write(0, b"y" * 10)
    assert arr.size() == 150


def test_array_truncate(pool):
    arr = make_array(pool, chunk_size=4 * KiB)
    arr.write(0, b"Z" * 10000)
    arr.truncate(5000)
    assert arr.size() == 5000
    data, _ = arr.read(0, 10000)
    assert data[:5000] == b"Z" * 5000
    assert data[5000:] == b"\0" * 5000


def test_array_zero_length_write(pool):
    arr = make_array(pool)
    assert arr.write(0, b"") == {}
    assert arr.size() == 0


def test_array_invalid_args(pool):
    arr = make_array(pool)
    with pytest.raises(InvalidArgumentError):
        arr.write(-1, b"x")
    with pytest.raises(InvalidArgumentError):
        arr.write(0)
    with pytest.raises(InvalidArgumentError):
        arr.read(-1, 10)
    with pytest.raises(InvalidArgumentError):
        arr.truncate(-1)


def test_array_chunk_not_divisible_by_ec_k(pool):
    cont = pool.create_container("bad-ec")
    with pytest.raises(InvalidArgumentError):
        DaosArray(cont, cont.alloc_oid(), ObjectClass.parse("EC_2P1"), chunk_size=1001)


def test_array_s1_lives_on_single_target(pool):
    arr = make_array(pool, oc="S1", label="s1")
    arr.write(0, b"x" * 10000)
    assert len(arr.all_targets()) == 1


def test_array_ec_write_amplification_charged(pool):
    arr = make_array(pool, oc="EC_2P1", chunk_size=8 * KiB, label="ec")
    charges = arr.write(0, b"D" * 8 * KiB)
    # 8 KiB data -> 4 KiB per data cell + 4 KiB parity = 12 KiB total.
    assert sum(charges.values()) == 12 * KiB
    assert len(charges) == 3


def test_array_ec_read_no_amplification(pool):
    arr = make_array(pool, oc="EC_2P1", chunk_size=8 * KiB, label="ec")
    arr.write(0, b"D" * 8 * KiB)
    data, charges = arr.read(0, 8 * KiB)
    assert data == b"D" * 8 * KiB
    assert sum(charges.values()) == 8 * KiB  # only data cells fetched


def test_array_rp2_write_amplification_charged(pool):
    arr = make_array(pool, oc="RP_2", chunk_size=8 * KiB, label="rp")
    charges = arr.write(0, b"D" * 8 * KiB)
    assert sum(charges.values()) == 16 * KiB
    assert len(charges) == 2


def test_array_rp2_survives_replica_failure(pool):
    arr = make_array(pool, oc="RP_2", chunk_size=8 * KiB, label="rp")
    payload = bytes(range(256)) * 32
    arr.write(0, payload)
    pool.fail_target(arr.groups[0][0].global_index)
    data, charges = arr.read(0, len(payload))
    assert data == payload
    assert all(t.alive for t in charges)


def test_array_ec_reconstructs_after_data_cell_loss(pool):
    arr = make_array(pool, oc="EC_2P1", chunk_size=8 * KiB, label="ec")
    payload = bytes((i * 13) % 256 for i in range(16 * KiB))
    arr.write(0, payload)
    # kill the first *data* target of group 0
    pool.fail_target(arr.groups[0][0].global_index)
    data, _ = arr.read(0, len(payload))
    assert data == payload


def test_array_ec_two_failures_lose_data(pool):
    arr = make_array(pool, oc="EC_2P1", chunk_size=8 * KiB, label="ec")
    arr.write(0, b"D" * 8 * KiB)
    pool.fail_target(arr.groups[0][0].global_index)
    pool.fail_target(arr.groups[0][1].global_index)
    with pytest.raises(DataLossError):
        arr.read(0, 8 * KiB)


def test_array_ec_group_on_distinct_engines(pool):
    arr = make_array(pool, oc="EC_2P1", chunk_size=8 * KiB, label="ec")
    engines = {t.engine for t in arr.groups[0]}
    assert len(engines) == 3  # fault-domain-aware placement


def test_array_wipe_releases_storage(pool):
    arr = make_array(pool, chunk_size=4 * KiB)
    arr.write(0, b"x" * 8192)
    arr.wipe()
    assert arr.size() == 0
    for g, group in enumerate(arr.groups[:2]):
        for target in group:
            assert not target.array_shards.get(arr.shard_key(g, 0))


def test_non_materialized_container_tracks_extents(pool):
    arr = make_array(pool, chunk_size=4 * KiB, label="nm", materialize=False)
    charges = arr.write(0, nbytes=8192)
    assert sum(charges.values()) == 8192
    assert arr.size() == 8192
    data, charges = arr.read(0, 8192)
    assert data == b"\0" * 8192
    assert sum(charges.values()) == 8192  # charges still exact


def test_materialized_write_requires_data(pool):
    arr = make_array(pool, label="m")
    with pytest.raises(InvalidArgumentError):
        arr.write(0, nbytes=100)


def test_container_destroy_wipes_objects(pool):
    arr = make_array(pool, label="gone", chunk_size=4 * KiB)
    arr.write(0, b"x" * 4096)
    pool.destroy_container("gone")
    assert arr.size() == 0
