"""GF(256) Reed-Solomon: algebra, encode/reconstruct, property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.daos.erasure import cauchy_matrix, encode, gf_inv, gf_mul, reconstruct
from repro.errors import DataLossError, InvalidArgumentError


# -- field algebra -------------------------------------------------------------


def test_gf_mul_identity_and_zero():
    for a in range(256):
        assert gf_mul(a, 1) == a
        assert gf_mul(1, a) == a
        assert gf_mul(a, 0) == 0
        assert gf_mul(0, a) == 0


def test_gf_mul_commutative_sample():
    for a in (3, 77, 200, 255):
        for b in (5, 99, 128):
            assert gf_mul(a, b) == gf_mul(b, a)


@given(st.integers(1, 255), st.integers(1, 255), st.integers(1, 255))
def test_gf_mul_associative(a, b, c):
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


@given(st.integers(1, 255))
def test_gf_inverse(a):
    assert gf_mul(a, gf_inv(a)) == 1


def test_gf_inv_zero_rejected():
    with pytest.raises(ZeroDivisionError):
        gf_inv(0)


def test_cauchy_matrix_nonzero_entries():
    mat = cauchy_matrix(2, 4)
    assert mat.shape == (2, 4)
    assert (mat != 0).all()


def test_cauchy_matrix_too_wide_rejected():
    with pytest.raises(InvalidArgumentError):
        cauchy_matrix(200, 100)


# -- encode / reconstruct --------------------------------------------------------


def test_encode_2p1_lengths():
    parity = encode([b"abcd", b"wxyz"], p=1)
    assert len(parity) == 1
    assert len(parity[0]) == 4


def test_encode_rejects_empty():
    with pytest.raises(InvalidArgumentError):
        encode([], p=1)
    with pytest.raises(InvalidArgumentError):
        encode([b"x"], p=0)


def test_reconstruct_lost_data_cell_2p1():
    data = [b"hello world!", b"goodbye it!!"]
    parity = encode(data, p=1)
    # lose data cell 0: reconstruct from cell 1 + parity
    available = {1: data[1], 2: parity[0]}
    recovered = reconstruct(available, k=2, p=1, cell_length=12)
    assert recovered[0] == data[0]
    assert recovered[1] == data[1]


def test_reconstruct_no_loss_passthrough():
    data = [b"aaaa", b"bbbb"]
    parity = encode(data, p=1)
    available = {0: data[0], 1: data[1], 2: parity[0]}
    recovered = reconstruct(available, k=2, p=1, cell_length=4)
    assert recovered == list(data)


def test_reconstruct_insufficient_cells():
    data = [b"aaaa", b"bbbb"]
    encode(data, p=1)
    with pytest.raises(DataLossError):
        reconstruct({0: data[0]}, k=2, p=1, cell_length=4)


def test_reconstruct_4p2_any_two_losses():
    data = [bytes([i * 16 + j for j in range(8)]) for i in range(4)]
    parity = encode(data, p=2)
    cells = {i: c for i, c in enumerate(data)}
    cells.update({4 + i: c for i, c in enumerate(parity)})
    # every pair of losses must be recoverable
    indices = sorted(cells)
    for a in indices:
        for b in indices:
            if a >= b:
                continue
            available = {i: c for i, c in cells.items() if i not in (a, b)}
            recovered = reconstruct(available, k=4, p=2, cell_length=8)
            assert recovered == data, f"failed losing cells {a},{b}"


def test_unequal_cell_lengths_zero_padded():
    data = [b"long-cell!", b"tiny"]
    parity = encode(data, p=1)
    assert len(parity[0]) == 10
    available = {1: data[1], 2: parity[0]}
    recovered = reconstruct(available, k=2, p=1, cell_length=10)
    assert recovered[0] == data[0]
    # the short cell comes back padded; caller truncates by known extent
    assert recovered[1][:4] == data[1]


@settings(max_examples=50, deadline=None)
@given(
    k=st.integers(1, 5),
    p=st.integers(1, 3),
    payload=st.binary(min_size=1, max_size=200),
    data=st.data(),
)
def test_roundtrip_random_losses(k, p, payload, data):
    """Property: any k surviving cells reconstruct the original data."""
    cell_len = (len(payload) + k - 1) // k
    cells = [payload[i * cell_len : (i + 1) * cell_len].ljust(cell_len, b"\0") for i in range(k)]
    parity = encode(cells, p=p)
    everything = {i: c for i, c in enumerate(cells)}
    everything.update({k + i: c for i, c in enumerate(parity)})
    survivors = data.draw(
        st.lists(st.sampled_from(sorted(everything)), min_size=k, max_size=k, unique=True)
    )
    available = {i: everything[i] for i in survivors}
    recovered = reconstruct(available, k=k, p=p, cell_length=cell_len)
    assert b"".join(recovered)[: len(payload)] == payload.ljust(k * cell_len, b"\0")[: len(payload)]
