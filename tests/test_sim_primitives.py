"""Semaphores, barriers, stores, gates."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator
from repro.sim.primitives import Barrier, Gate, Semaphore, Store


# -- Semaphore ---------------------------------------------------------------


def test_semaphore_limits_concurrency():
    sim = Simulator()
    sem = Semaphore(sim, 2)
    concurrent = {"now": 0, "peak": 0}

    def worker():
        yield sem.acquire()
        concurrent["now"] += 1
        concurrent["peak"] = max(concurrent["peak"], concurrent["now"])
        yield sim.timeout(1.0)
        concurrent["now"] -= 1
        sem.release()

    for _ in range(6):
        sim.process(worker())
    sim.run()
    assert concurrent["peak"] == 2
    assert sim.now == pytest.approx(3.0)  # 6 jobs, 2 at a time, 1s each


def test_semaphore_fifo_order():
    sim = Simulator()
    sem = Semaphore(sim, 1)
    order = []

    def worker(i):
        yield sem.acquire()
        order.append(i)
        yield sim.timeout(1.0)
        sem.release()

    for i in range(5):
        sim.process(worker(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_semaphore_try_acquire():
    sim = Simulator()
    sem = Semaphore(sim, 1)
    assert sem.try_acquire() is True
    assert sem.try_acquire() is False
    sem.release()
    assert sem.try_acquire() is True


def test_semaphore_over_release_rejected():
    sim = Simulator()
    sem = Semaphore(sim, 1)
    with pytest.raises(SimulationError):
        sem.release()


def test_semaphore_bad_capacity():
    with pytest.raises(SimulationError):
        Semaphore(Simulator(), 0)


def test_semaphore_counts():
    sim = Simulator()
    sem = Semaphore(sim, 3)
    assert sem.available == 3
    assert sem.queued == 0


# -- Barrier -------------------------------------------------------------------


def test_barrier_releases_all_at_once():
    sim = Simulator()
    barrier = Barrier(sim, 3)
    release_times = []

    def worker(delay):
        yield sim.timeout(delay)
        yield barrier.wait()
        release_times.append(sim.now)

    for d in (1.0, 2.0, 3.0):
        sim.process(worker(d))
    sim.run()
    assert release_times == [3.0, 3.0, 3.0]


def test_barrier_is_cyclic_and_reports_cycle():
    sim = Simulator()
    barrier = Barrier(sim, 2)
    cycles = []

    def worker(delays):
        for d in delays:
            yield sim.timeout(d)
            cycle = yield barrier.wait()
            cycles.append(cycle)

    sim.process(worker([1.0, 1.0]))
    sim.process(worker([2.0, 2.0]))
    sim.run()
    assert cycles == [0, 0, 1, 1]
    assert barrier.cycle == 2


def test_barrier_single_party_never_blocks():
    sim = Simulator()
    barrier = Barrier(sim, 1)

    def solo():
        yield barrier.wait()
        yield barrier.wait()
        return sim.now

    proc = sim.process(solo())
    sim.run()
    assert proc.result == 0.0


def test_barrier_overflow_rejected():
    sim = Simulator()
    barrier = Barrier(sim, 1)
    barrier._arrived = 1  # simulate a stuck party (white-box)
    with pytest.raises(SimulationError):
        barrier.wait()


def test_barrier_bad_parties():
    with pytest.raises(SimulationError):
        Barrier(Simulator(), 0)


# -- Store ----------------------------------------------------------------------


def test_store_fifo_delivery():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((sim.now, item))

    def producer():
        for i in range(3):
            yield sim.timeout(1.0)
            store.put(i)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_buffers_when_no_getter():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    assert len(store) == 2
    assert store.try_get() == "a"
    assert store.try_get() == "b"
    assert store.try_get() is None


def test_store_multiple_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(tag):
        item = yield store.get()
        got.append((tag, item))

    sim.process(getter("first"))
    sim.process(getter("second"))
    sim.schedule(1.0, store.put, "x")
    sim.schedule(2.0, store.put, "y")
    sim.run()
    assert got == [("first", "x"), ("second", "y")]


# -- Gate --------------------------------------------------------------------------


def test_gate_open_passes_immediately():
    sim = Simulator()
    gate = Gate(sim, is_open=True)

    def walker():
        yield gate.passage()
        return sim.now

    proc = sim.process(walker())
    sim.run()
    assert proc.result == 0.0


def test_gate_closed_blocks_until_open():
    sim = Simulator()
    gate = Gate(sim, is_open=False)

    def walker():
        yield gate.passage()
        return sim.now

    proc = sim.process(walker())
    sim.schedule(5.0, gate.open)
    sim.run()
    assert proc.result == 5.0
    assert gate.is_open


def test_gate_close_reblocks():
    sim = Simulator()
    gate = Gate(sim, is_open=True)
    times = []

    def walker():
        yield gate.passage()
        times.append(sim.now)
        gate.close()
        yield gate.passage()
        times.append(sim.now)

    sim.process(walker())
    sim.schedule(2.0, gate.open)
    sim.run()
    assert times == [0.0, 2.0]
