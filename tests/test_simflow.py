"""simflow (SL011-SL014): positive and negative fixtures per rule,
shared-graph mechanics, and the CLI front end."""

import json
import textwrap

import pytest

from repro.analysis.cli import main as flow_main
from repro.analysis.rules import flow_rules
from repro.lint.config import LintConfig
from repro.lint.engine import LintEngine
from repro.lint.findings import Severity


@pytest.fixture()
def flow(tmp_path, monkeypatch):
    """Write a {relpath: source} dict into a tmp tree and run simflow."""

    def run(files, config=None, paths=None):
        for rel, src in files.items():
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(textwrap.dedent(src))
        monkeypatch.chdir(tmp_path)
        engine = LintEngine(config=config or LintConfig(), rules=flow_rules())
        return engine.run(paths or ["."])

    return run


def codes(findings):
    return [f.code for f in findings]


SIM_CORE = """
    class Simulator:
        def __init__(self):
            self.now = 0.0

        def schedule(self, delay):
            self.now += delay
"""


# ---------------------------------------------------------------- SL011


def test_sl011_direct_write_fires(flow):
    findings = flow({
        "sim/core.py": SIM_CORE,
        "obs/bad.py": """
            from sim.core import Simulator

            def snapshot(sim: Simulator):
                sim.now = 0.0
        """,
    })
    assert "SL011" in codes(findings)
    f = next(f for f in findings if f.code == "SL011")
    assert f.path == "obs/bad.py"
    assert "read-only" in f.message


def test_sl011_transitive_write_reports_chain(flow):
    findings = flow({
        "sim/core.py": SIM_CORE,
        "obs/bad.py": """
            from sim.core import Simulator

            def helper(sim: Simulator):
                sim.now = 99.0

            def finalize(sim: Simulator):
                helper(sim)
        """,
    })
    sl011 = [f for f in findings if f.code == "SL011"]
    # both the entry point and the helper (itself obs code) are flagged
    assert sl011
    assert any("via" in f.message for f in sl011)


def test_sl011_mutator_call_fires(flow):
    findings = flow({
        "sim/core.py": SIM_CORE,
        "obs/probe.py": """
            from sim.core import Simulator

            def tick(sim: Simulator):
                sim.schedule(1.0)
        """,
    })
    assert "SL011" in codes(findings)


def test_sl011_reads_and_observation_attrs_clean(flow):
    findings = flow({
        "sim/core.py": SIM_CORE,
        "obs/good.py": """
            from sim.core import Simulator

            class Collector:
                def __init__(self):
                    self.samples = []

                def sample(self, sim: Simulator):
                    self.samples.append(sim.now)
        """,
    })
    assert findings == []


def test_sl011_probe_callback_checked(flow):
    # registered callbacks are entry points even outside obs/
    findings = flow({
        "sim/core.py": SIM_CORE,
        "sim/wire.py": """
            from sim.core import Simulator

            def probe(sim: Simulator, t):
                sim.schedule(t)

            def attach(sim: Simulator):
                sim.time_probe = probe
        """,
    })
    assert "SL011" in codes(findings)


def test_sl011_dynamic_call_degrades_to_warning(flow):
    findings = flow({
        "sim/core.py": SIM_CORE,
        "obs/dyn.py": """
            def report(writer, name):
                getattr(writer, name)()
        """,
    })
    sl011 = [f for f in findings if f.code == "SL011"]
    assert sl011
    assert all(f.severity is Severity.WARNING for f in sl011)
    assert "dynamic call" in sl011[0].message


# ---------------------------------------------------------------- SL012


def test_sl012_wallclock_into_model_fires(flow):
    findings = flow({
        "sim/core.py": SIM_CORE,
        "harness/bench.py": """
            import time

            from sim.core import Simulator

            def measure(sim: Simulator):
                start = time.perf_counter()
                sim.schedule(start)
                return start
        """,
    })
    sl012 = [f for f in findings if f.code == "SL012"]
    assert sl012
    assert sl012[0].path == "harness/bench.py"
    assert "host-derived" in sl012[0].message


def test_sl012_store_into_model_attr_fires(flow):
    findings = flow({
        "sim/core.py": SIM_CORE,
        "harness/bench.py": """
            import time

            from sim.core import Simulator

            def stamp(sim: Simulator):
                sim.now = time.perf_counter()
        """,
    })
    assert "SL012" in codes(findings)


def test_sl012_wallclock_kept_in_harness_clean(flow):
    findings = flow({
        "sim/core.py": SIM_CORE,
        "harness/bench.py": """
            import time

            def wall():
                start = time.perf_counter()
                return time.perf_counter() - start
        """,
    })
    assert findings == []


def test_sl012_seeded_rng_not_a_source(flow):
    # default_rng(seed) is deterministic-by-construction: allowlisted
    # RNG modules may hand seeded generators into the model
    findings = flow({
        "sim/core.py": SIM_CORE,
        "sim/randomness.py": """
            import numpy as np

            from sim.core import Simulator

            def wire(sim: Simulator, seed):
                sim.rng = np.random.default_rng(seed)
        """,
    })
    assert codes(findings) == []


# ---------------------------------------------------------------- SL013


def test_sl013_literal_seed_fires(flow):
    findings = flow({
        "sim/randomness.py": """
            class RngStreams:
                def __init__(self, seed=0):
                    self.seed = seed
        """,
        "workloads/drv.py": """
            from sim.randomness import RngStreams

            def build():
                return RngStreams(seed=1234)
        """,
    })
    sl013 = [f for f in findings if f.code == "SL013"]
    assert len(sl013) == 1
    assert sl013[0].path == "workloads/drv.py"
    assert "does not trace back" in sl013[0].message


def test_sl013_missing_seed_fires(flow):
    findings = flow({
        "workloads/drv.py": """
            from sim.randomness import RngStreams

            def build():
                return RngStreams()
        """,
    })
    assert "SL013" in codes(findings)
    f = next(f for f in findings if f.code == "SL013")
    assert "without an explicit seed" in f.message


def test_sl013_point_seed_clean(flow):
    findings = flow({
        "workloads/drv.py": """
            from sim.randomness import RngStreams
            from harness.experiment import point_seed

            def build(spec, rep):
                seed = point_seed(spec, rep)
                return RngStreams(seed=seed)
        """,
    })
    assert findings == []


def test_sl013_interprocedural_provenance(flow):
    # the seed parameter is judged by what call sites actually pass
    clean = flow({
        "workloads/a.py": """
            from sim.randomness import RngStreams

            def build(seed):
                return RngStreams(seed=seed)

            def main(spec):
                from harness.experiment import point_seed
                return build(point_seed(spec, 0))
        """,
    })
    assert clean == []


def test_sl013_interprocedural_literal_fires(flow):
    findings = flow({
        "workloads/a.py": """
            from sim.randomness import RngStreams

            def build(seed):
                return RngStreams(seed=seed)

            def main():
                return build(42)
        """,
    })
    assert "SL013" in codes(findings)


def test_sl013_randomness_home_exempt_from_seed_check(flow):
    findings = flow({
        "sim/randomness.py": """
            class RngStreams:
                def __init__(self, seed=0):
                    self.seed = seed

                def child(self, name):
                    return RngStreams(seed=self.seed + 1)
        """,
    })
    assert findings == []


def test_sl013_shared_stream_name_fires(flow):
    findings = flow({
        "daos/a.py": """
            class DaosClient:
                def jitter(self, rng):
                    return rng.stream(f"{self.name}.op-jitter")
        """,
        "ceph/b.py": """
            class RadosClient:
                def jitter(self, rng):
                    return rng.stream(f"{self.name}.op-jitter")
        """,
    })
    sl013 = [f for f in findings if f.code == "SL013"]
    assert len(sl013) == 2  # one per colliding site
    assert "shared" in sl013[0].message


def test_sl013_distinct_stream_names_clean(flow):
    findings = flow({
        "daos/a.py": """
            class DaosClient:
                def jitter(self, rng):
                    return rng.stream(f"daos.{self.name}.op-jitter")
        """,
        "ceph/b.py": """
            class RadosClient:
                def jitter(self, rng):
                    return rng.stream(f"rados.{self.name}.op-jitter")
        """,
    })
    assert findings == []


# ---------------------------------------------------------------- SL014

UNITS = """
    Bytes = int
    Seconds = float
    BytesPerSec = float
    KiB = 1024
    MiB = 1024**2
"""


def test_sl014_add_mismatch_fires(flow):
    findings = flow({
        "units.py": UNITS,
        "sim/model.py": """
            from units import Bytes, Seconds

            def cost(size: Bytes, t: Seconds):
                return size + t
        """,
    })
    sl014 = [f for f in findings if f.code == "SL014"]
    assert len(sl014) == 1
    assert "dimension mismatch" in sl014[0].message


def test_sl014_compare_mismatch_fires(flow):
    findings = flow({
        "units.py": UNITS,
        "daos/model.py": """
            from units import Bytes, Seconds

            def check(size: Bytes, t: Seconds):
                return size > t
        """,
    })
    assert "SL014" in codes(findings)
    f = next(f for f in findings if f.code == "SL014")
    assert "comparison" in f.message


def test_sl014_rate_algebra_clean(flow):
    findings = flow({
        "units.py": UNITS,
        "lustre/model.py": """
            from units import Bytes, BytesPerSec, Seconds, MiB

            def elapsed(size: Bytes, bw: BytesPerSec) -> Seconds:
                return size / bw

            def moved(bw: BytesPerSec, t: Seconds) -> Bytes:
                return bw * t + MiB
        """,
    })
    assert findings == []


def test_sl014_ambiguous_literal_warns(flow):
    findings = flow({
        "units.py": UNITS,
        "workloads/model.py": """
            from units import Bytes

            def pad(size: Bytes):
                return size + 1048576
        """,
    })
    sl014 = [f for f in findings if f.code == "SL014"]
    assert len(sl014) == 1
    assert sl014[0].severity is Severity.WARNING
    assert "unit-ambiguous literal" in sl014[0].message
    assert "MiB" in sl014[0].message


def test_sl014_out_of_scope_package_clean(flow):
    # obs/ and harness/ are not dimension-checked packages
    findings = flow({
        "units.py": UNITS,
        "obs/fmt.py": """
            from units import Bytes, Seconds

            def mix(size: Bytes, t: Seconds):
                return size + t
        """,
    })
    assert findings == []


def test_sl014_flownet_exempt(flow):
    findings = flow({
        "units.py": UNITS,
        "sim/flownet.py": """
            from units import Bytes, Seconds

            def mix(size: Bytes, t: Seconds):
                return size + t
        """,
    })
    assert findings == []


# ------------------------------------------------- suppression / engine


def test_simflow_pragma_suppression(flow):
    findings = flow({
        "units.py": UNITS,
        "sim/model.py": """
            from units import Bytes, Seconds

            def cost(size: Bytes, t: Seconds):
                return size + t  # simlint: disable=SL014 -- scalar hack
        """,
    })
    assert findings == []


def test_simflow_does_not_flag_simlint_pragmas_as_unused(flow):
    # SL001 belongs to the simlint front end; its pragma is out of
    # scope here, not stale
    findings = flow({
        "sim/model.py": """
            def f(t):
                return t  # simlint: disable=SL001
        """,
    })
    assert findings == []


def test_flow_rules_registry_is_separate():
    from repro.lint.registry import all_rules

    flow_codes = {r.code for r in flow_rules()}
    lint_codes = {r.code for r in all_rules()}
    assert flow_codes == {"SL011", "SL012", "SL013", "SL014"}
    assert flow_codes.isdisjoint(lint_codes)


# ---------------------------------------------------------- CLI layer


def _write(tmp_path, rel, src):
    p = tmp_path / rel
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(textwrap.dedent(src))
    return p


def test_cli_exit_codes(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "obs/clean.py", "def f(x):\n    return x\n")
    assert flow_main(["--no-config", "obs"]) == 0
    _write(tmp_path, "sim/core.py", textwrap.dedent(SIM_CORE))
    _write(tmp_path, "obs/bad.py", textwrap.dedent("""
        from sim.core import Simulator

        def snapshot(sim: Simulator):
            sim.now = 0.0
    """))
    assert flow_main(["--no-config", "."]) == 1
    out = capsys.readouterr().out
    assert "simflow:" in out
    assert "SL011" in out


def test_cli_list_rules(capsys):
    assert flow_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SL011", "SL012", "SL013", "SL014"):
        assert code in out


def test_cli_sarif_report(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "workloads/drv.py", textwrap.dedent("""
        from sim.randomness import RngStreams

        def build():
            return RngStreams(seed=7)
    """))
    assert flow_main(["--no-config", "--sarif", "-", "."]) == 1
    doc = json.loads(capsys.readouterr().out)
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "simflow"
    assert [r["ruleId"] for r in run["results"]] == ["SL013"]


def test_cli_repository_tree_is_clean():
    """The merged tree must pass simflow: src, tools and examples."""
    import pathlib

    repo = pathlib.Path(__file__).resolve().parent.parent
    assert flow_main(["--no-config", str(repo / "src")]) == 0
