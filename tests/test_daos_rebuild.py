"""Pool rebuild: redundancy restoration after target failure."""

import pytest

from repro.daos import DaosClient, Pool
from repro.daos.rebuild import plan_rebuild, run_rebuild
from repro.hardware import Cluster
from repro.units import KiB


def setup(seed=0):
    cluster = Cluster(n_servers=4, n_clients=1, seed=seed)
    pool = Pool(cluster)
    client = DaosClient(cluster, pool, cluster.clients[0])
    return cluster, pool, client


def drive(cluster, gen):
    proc = cluster.sim.process(gen)
    cluster.sim.run()
    return proc.result


PAYLOAD = bytes((i * 17) % 256 for i in range(64 * KiB))


def make_protected_objects(cluster, pool, client):
    state = {}

    def build():
        cont = yield from client.create_container("rb", materialize=True)
        state["rp"] = yield from client.create_array(cont, oc="RP_2", chunk_size=8 * KiB)
        state["ec"] = yield from client.create_array(cont, oc="EC_2P1", chunk_size=8 * KiB)
        state["kv"] = yield from client.create_kv(cont, oc="RP_2")
        yield from client.array_write(state["rp"], 0, PAYLOAD)
        yield from client.array_write(state["ec"], 0, PAYLOAD)
        yield from client.kv_put(state["kv"], "k", b"important")

    drive(cluster, build())
    return state


def test_plan_enumerates_failed_shards():
    cluster, pool, client = setup()
    state = make_protected_objects(cluster, pool, client)
    victim = state["rp"].groups[0][0]
    pool.fail_target(victim.global_index)
    todo = plan_rebuild(pool, victim)
    assert any(obj is state["rp"] for obj, _, _ in todo)


def test_rebuild_restores_double_failure_tolerance():
    """After rebuilding, the object survives losing a *second* target —
    redundancy really was restored, not just readability."""
    cluster, pool, client = setup()
    state = make_protected_objects(cluster, pool, client)
    for name in ("rp", "ec"):
        arr = state[name]
        first = arr.groups[0][0]
        pool.fail_target(first.global_index)
        report = drive(cluster, run_rebuild(pool, first))
        assert report.fully_recovered, f"{name}: {report.objects_lost}"
        assert first not in arr.groups[0]
        # now kill another member of the (repaired) group
        second = arr.groups[0][0]
        pool.fail_target(second.global_index)
        data, _ = arr.read(0, len(PAYLOAD))
        assert data == PAYLOAD, name


def test_rebuild_moves_expected_bytes():
    cluster, pool, client = setup()
    state = make_protected_objects(cluster, pool, client)
    victim = state["ec"].groups[0][0]
    pool.fail_target(victim.global_index)
    report = drive(cluster, run_rebuild(pool, victim))
    assert report.shards_rebuilt >= 1
    assert report.bytes_moved > 0
    assert report.duration > 0


def test_rebuild_reports_unprotected_objects_lost():
    cluster, pool, client = setup()
    state = {}

    def build():
        cont = yield from client.create_container("plain", materialize=True)
        state["arr"] = yield from client.create_array(cont, oc="S1", chunk_size=8 * KiB)
        yield from client.array_write(state["arr"], 0, PAYLOAD)

    drive(cluster, build())
    victim = state["arr"].groups[0][0]
    pool.fail_target(victim.global_index)
    report = drive(cluster, run_rebuild(pool, victim))
    assert not report.fully_recovered
    assert str(state["arr"].oid) in report.objects_lost


def test_rebuild_kv_replicas():
    cluster, pool, client = setup()
    state = make_protected_objects(cluster, pool, client)
    kv = state["kv"]
    victim = kv.groups[kv._group_for("k")][0]
    pool.fail_target(victim.global_index)
    report = drive(cluster, run_rebuild(pool, victim))
    assert report.fully_recovered
    # second failure in the repaired group still leaves the key readable
    second = kv.groups[kv._group_for("k")][0]
    pool.fail_target(second.global_index)
    assert kv.get("k")[0] == b"important"


def test_pool_query_reflects_usage_and_failures():
    cluster, pool, client = setup()
    state = make_protected_objects(cluster, pool, client)
    q1 = pool.query()
    assert q1["used_bytes"] > 0
    assert q1["targets_alive"] == pool.n_targets
    victim = state["rp"].groups[0][0]
    pool.fail_target(victim.global_index)
    q2 = pool.query()
    assert q2["targets_alive"] == pool.n_targets - 1
    assert q2["capacity_bytes"] == q1["capacity_bytes"]


def test_device_space_accounting_tracks_writes():
    cluster, pool, client = setup()
    state = make_protected_objects(cluster, pool, client)
    # EC 2+1 stores 1.5x, RP_2 stores 2x of the payload across devices
    used = sum(t.device.used_bytes for t in pool.ring)
    expected = int(len(PAYLOAD) * (1.5 + 2.0))  # kv values negligible? no:
    expected += 2 * len(b"important")  # the replicated KV value
    assert used == pytest.approx(expected, abs=64)
