"""Cross-module integration scenarios: full stacks exercised end to end
with real (materialised) data."""

import pytest

from repro.daos import DaosClient, Pool
from repro.dfs import Dfs
from repro.dfuse import DfuseMount, InterceptedMount
from repro.fdb import FDB, FdbDaosBackend, key_sequence
from repro.hardware import Cluster
from repro.hdf5 import Hdf5PosixFile
from repro.units import GiB, KiB, MiB


def drive(cluster, gen):
    proc = cluster.sim.process(gen)
    cluster.sim.run()
    return proc.result


def test_full_posix_stack_data_integrity():
    """dfuse -> dfs -> daos arrays -> targets, with EC files, verifying
    every byte through the whole stack after a target failure."""
    cluster = Cluster(n_servers=4, n_clients=1, seed=5)
    pool = Pool(cluster)
    client = DaosClient(cluster, pool, cluster.clients[0])
    cont = pool.create_container("stack", materialize=True)
    dfs = Dfs(client, cont, file_class="EC_2P1", chunk_size=16 * KiB)
    mount = DfuseMount(dfs, cluster.clients[0])
    il = InterceptedMount(mount)
    payload = bytes((i * 31) % 256 for i in range(256 * KiB))

    def flow():
        yield from mount.mount()
        yield from mount.mkdir("/data")
        fh = yield from mount.creat("/data/blob.bin")
        yield from il.write(fh, 0, payload)
        yield from mount.close(fh)
        # kill one target under the file, then read through the IL
        victim = fh.array.groups[0][0]
        pool.fail_target(victim.global_index)
        fh2 = yield from mount.open("/data/blob.bin")
        data = yield from il.read(fh2, 0, len(payload))
        return data

    assert drive(cluster, flow()) == payload


def test_hdf5_file_on_dfuse_roundtrip_with_data():
    cluster = Cluster(n_servers=2, n_clients=1, seed=0)
    pool = Pool(cluster)
    client = DaosClient(cluster, pool, cluster.clients[0])
    cont = pool.create_container("h5", materialize=True)
    dfs = Dfs(client, cont, chunk_size=64 * KiB)
    mount = DfuseMount(dfs, cluster.clients[0])
    ops = {i: bytes([i]) * (32 * KiB) for i in range(4)}

    def flow():
        yield from mount.mount()
        h5 = Hdf5PosixFile(mount, "/sim.h5")
        yield from h5.create()
        for i, data in ops.items():
            yield from h5.write_op(i, len(data), data=data)
        yield from h5.close()
        h5r = Hdf5PosixFile(mount, "/sim.h5")
        yield from h5r.open()
        out = {}
        for i in ops:
            out[i] = yield from h5r.read_op(i, 32 * KiB)
        yield from h5r.close()
        return out

    assert drive(cluster, flow()) == ops


def test_many_fdb_processes_share_catalogue():
    """Several concurrent FDB sessions archive disjoint field sets into
    one container; each retrieves its own and one foreign field."""
    cluster = Cluster(n_servers=4, n_clients=2, seed=9)
    pool = Pool(cluster)
    n_procs = 4
    fields = 6
    payloads = {}
    fdbs = []
    for proc in range(n_procs):
        node = cluster.clients[proc % len(cluster.clients)]
        client = DaosClient(cluster, pool, node)
        fdbs.append(FDB(FdbDaosBackend(client, proc_id=proc)))
    done = []

    def writer(proc):
        fdb = fdbs[proc]
        yield from fdb.open(writer=True)
        for key in key_sequence(fields, member=proc):
            blob = bytes([proc * 16 + 1]) * (32 * KiB)
            payloads[key] = blob
            yield from fdb.archive(key, data=blob)
        yield from fdb.flush()
        done.append(proc)

    for proc in range(n_procs):
        cluster.sim.process(writer(proc))
    cluster.sim.run()
    assert sorted(done) == list(range(n_procs))

    def reader(proc):
        fdb = fdbs[proc]
        for key in key_sequence(fields, member=proc):
            data = yield from fdb.retrieve(key)
            assert data == payloads[key]

    procs = [cluster.sim.process(reader(p)) for p in range(n_procs)]
    cluster.sim.run()
    for proc in procs:
        proc.result  # re-raise any failure
    # the shared root KV saw entries from every process
    assert len(fdbs[0].backend.root_kv) >= 1


def test_materialized_exact_ior_verifies_data():
    """Exact-mode IOR over libdfs with a materialising container: the
    read phase really fetches what the write phase stored."""
    from repro.workloads.common import DaosEnv, WorkloadConfig
    from repro.workloads.ior import run_ior

    cluster = Cluster(n_servers=2, n_clients=1, seed=0)
    env = DaosEnv(cluster)
    cfg = WorkloadConfig(
        n_client_nodes=1, ppn=2, ops_per_process=4, op_size=64 * KiB, mode="exact"
    )
    rec = run_ior(env, cfg, "DAOS")
    assert rec.get("write").bytes == rec.get("read").bytes == 2 * 4 * 64 * KiB


def test_cluster_rooflines_match_paper():
    cluster = Cluster(n_servers=16, n_clients=32, seed=0)
    assert cluster.write_roofline() == pytest.approx(61.76 * GiB, rel=1e-3)
    assert cluster.read_roofline() == pytest.approx(100 * GiB, rel=1e-3)
    small = Cluster(n_servers=16, n_clients=8, seed=0)
    # client-side NIC bound when clients are few
    assert small.read_roofline() == pytest.approx(50 * GiB, rel=1e-3)


def test_target_failure_during_timed_run():
    """Kill a target in the middle of a timed replicated workload: all
    in-flight and subsequent I/O completes against the surviving
    replicas, and the pool reports the failure."""
    from repro.daos import DaosClient, Pool

    cluster = Cluster(n_servers=4, n_clients=1, seed=2)
    pool = Pool(cluster)
    client = DaosClient(cluster, pool, cluster.clients[0])
    payload = b"\xab" * (64 * KiB)
    outcome = {}

    def writer():
        cont = yield from client.create_container("under-fire", materialize=True)
        arr = yield from client.create_array(cont, oc="RP_2", chunk_size=16 * KiB)
        for i in range(16):
            yield from client.array_write(arr, i * len(payload), payload)
        data, _ = arr.read(0, 16 * len(payload))
        outcome["intact"] = data == payload * 16
        outcome["end"] = cluster.sim.now
        outcome["arr"] = arr

    proc = cluster.sim.process(writer())

    def saboteur():
        yield cluster.sim.timeout(0.0005)  # mid-run
        # kill a target currently holding replica data
        arr = outcome.get("arr")
        victim = pool.ring[0]
        pool.fail_target(victim.global_index)
        outcome["killed_at"] = cluster.sim.now

    cluster.sim.process(saboteur())
    cluster.sim.run()
    proc.result
    assert outcome["intact"]
    assert pool.query()["targets_alive"] == pool.n_targets - 1


def test_degraded_network_slows_transfers():
    """Halving a server NIC mid-flight stretches an ongoing read."""
    from repro.daos import DaosClient, Pool

    cluster = Cluster(n_servers=1, n_clients=1, seed=0)
    pool = Pool(cluster)
    client = DaosClient(cluster, pool, cluster.clients[0])
    n = 64 * MiB
    times = {}

    def reader():
        cont = yield from client.create_container("net", materialize=False)
        arr = yield from client.create_array(cont, oc="SX")
        yield from client.array_write(arr, 0, nbytes=n)
        t0 = cluster.sim.now
        yield from client.array_read(arr, 0, n)
        times["healthy"] = cluster.sim.now - t0
        # degrade the server's egress to half and read again
        link = cluster.servers[0].nic_tx
        cluster.net.set_capacity(link.name, link.capacity / 2)
        t1 = cluster.sim.now
        yield from client.array_read(arr, 0, n)
        times["degraded"] = cluster.sim.now - t1

    proc = cluster.sim.process(reader())
    cluster.sim.run()
    proc.result
    assert times["degraded"] > 1.5 * times["healthy"]


def test_mixed_workload_concurrency_stress():
    """Many concurrent exact-mode actors of different kinds on one pool:
    array writers, KV indexers, DFS clients, and a saboteur/rebuilder —
    shaking out scheduler races. Everything must complete and verify."""
    from repro.daos import DaosClient, Pool
    from repro.daos.rebuild import run_rebuild

    cluster = Cluster(n_servers=4, n_clients=2, seed=13)
    pool = Pool(cluster)
    cont_holder = {}
    finished = []
    n_actors = 24

    def bootstrap():
        client = DaosClient(cluster, pool, cluster.clients[0])
        cont_holder["cont"] = yield from client.create_container(
            "stress", materialize=True
        )
        for i in range(n_actors):
            cluster.sim.process(actor(i), name=f"actor{i}")
        cluster.sim.process(saboteur())

    def actor(i):
        node = cluster.clients[i % 2]
        client = DaosClient(cluster, pool, node, name=f"stress{i}")
        cont = cont_holder["cont"]
        if i % 3 == 0:
            arr = yield from client.create_array(cont, oc="RP_2", chunk_size=4 * KiB)
            payload = bytes([i]) * (16 * KiB)
            yield from client.array_write(arr, 0, payload)
            data = yield from client.array_read(arr, 0, len(payload))
            assert data == payload
        elif i % 3 == 1:
            kv = yield from client.create_kv(cont, oc="RP_2")
            for k in range(8):
                yield from client.kv_put(kv, f"a{i}.{k}", bytes([k]) * 64)
            for k in range(8):
                value = yield from client.kv_get(kv, f"a{i}.{k}")
                assert value == bytes([k]) * 64
        else:
            from repro.dfs import Dfs

            dfs = Dfs(client, cont, file_class="RP_2", chunk_size=4 * KiB)
            if dfs.container.properties.get("dfs_root_oid") is None:
                pass  # mount() below creates or opens the shared root
            yield from dfs.mount()
            fh = yield from dfs.create(f"/stress-{i}")
            yield from dfs.write(fh, 0, bytes([i]) * 8192)
            got = yield from dfs.read(fh, 0, 8192)
            assert got == bytes([i]) * 8192
        finished.append(i)

    def saboteur():
        yield cluster.sim.timeout(0.002)
        victim = pool.ring[7]
        pool.fail_target(victim.global_index)
        report = yield from run_rebuild(pool, victim)
        cont_holder["report"] = report

    cluster.sim.process(bootstrap())
    cluster.sim.run()
    assert sorted(finished) == list(range(n_actors))
    assert "report" in cont_holder
