"""simprof: engine self-profiling (ProfileRecorder) and the per-op
LatencyHistogram.

The profiling contract mirrors the rest of obs/: everything *counted*
(events, sites, recomputes, queue depths, bucket indices) is a pure
function of the simulation — exact across processes and merge orders —
while wall-clock fields are host noise and only sanity-checked.  The
dormancy contract is absolute: with no recorder attached the engine
pays one ``is None`` check and modelled numbers are bit-identical.
"""

import json

import pytest

import repro.obs as obs_mod
from repro.daos import DaosClient, Pool
from repro.errors import ConfigError
from repro.hardware import Cluster
from repro.harness.executor import ParallelExecutor, SerialExecutor, execute_plan
from repro.harness.experiment import PointSpec, run_point
from repro.harness.plan import make_plan
from repro.obs import (
    LatencyHistogram,
    Observability,
    ProfileRecorder,
    export_collapsed_stacks,
    export_profile_json,
    render_hot_paths,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.core import Simulator
from repro.sim.flownet import FlowNetwork
from repro.units import MiB

SMALL = PointSpec(
    workload="ior", store="daos", api="DAOS",
    n_servers=2, n_client_nodes=1, ppn=2, ops_per_process=4, batches=1,
)
OTHER = SMALL.with_(ppn=4)


# ------------------------------------------------------- recorder basics


def run_ticks(n=1000, profile=None, metrics=None):
    sim = Simulator()
    sim.profile = profile
    sim.metrics = metrics

    def tick():
        pass

    for i in range(n):
        sim.schedule(i * 1e-6, tick)
    sim.run()
    return sim


def test_dispatch_counts_match_engine_counter():
    prof = ProfileRecorder()
    reg = MetricsRegistry()
    run_ticks(1000, profile=prof, metrics=reg)
    assert prof.events_dispatched == 1000
    assert prof.events_dispatched == int(reg.counter("sim.events_executed").value)
    assert prof.runs == 1
    assert prof.dispatch_wall >= 0.0


def test_queue_peak_matches_heap_peak_gauge():
    prof = ProfileRecorder()
    reg = MetricsRegistry()
    run_ticks(1000, profile=prof, metrics=reg)
    assert prof.queue_depth_peak == int(reg.gauge("sim.heap_peak").peak)
    assert prof.queue_depth_peak >= 1


def test_site_names_are_stable_and_local_noise_free():
    prof = ProfileRecorder()
    run_ticks(10, profile=prof)
    # the tick closure lives in a test function: its <locals> qualname
    # noise must be stripped so keys merge across runs and processes
    (site,) = prof.sites
    assert "<locals>" not in site
    assert site.endswith(".tick")
    assert prof.sites[site][0] == 10


def test_recompute_stats_match_flownet_reallocations():
    sim = Simulator()
    prof = ProfileRecorder()
    sim.profile = prof
    net = FlowNetwork(sim)
    links = [net.add_link(f"l{i}", 1e9) for i in range(4)]

    def driver(i):
        flow = net.transfer(4 * MiB, [(links[i % 4], 1.0), (links[(i + 1) % 4], 1.0)],
                            name=f"f{i}")
        yield flow.done

    for i in range(6):
        sim.process(driver(i))
    sim.run()
    assert prof.recomputes == net.reallocations
    assert prof.recomputes > 0
    assert prof.links_total_peak == 4
    assert prof.recompute_flows > 0
    assert prof.recompute_edges >= prof.recompute_flows  # 2 links per flow
    assert prof.recomputes_full <= prof.recomputes
    assert prof.recompute_wall >= 0.0


def test_profiled_point_is_bit_identical_to_unobserved():
    with obs_mod.activated(None):
        bare = run_point(SMALL, reps=2)
    obs = Observability(profile=ProfileRecorder())
    with obs_mod.activated(obs):
        profiled = run_point(SMALL, reps=2)
    obs.finalize()
    # exact: attaching simprof must not perturb modelled results
    assert profiled.write_bw == bare.write_bw
    assert obs.profile.events_dispatched > 0
    assert obs.profile.recomputes > 0


def test_dump_merge_adds_counts_and_maxes_peaks():
    a = ProfileRecorder()
    b = ProfileRecorder()
    run_ticks(100, profile=a)
    run_ticks(250, profile=b)
    b.queue_depth_peak = max(b.queue_depth_peak, 999)
    merged = ProfileRecorder()
    merged.merge_state(a.dump_state())
    merged.merge_state(b.dump_state())
    assert merged.events_dispatched == 350
    assert merged.runs == 2
    assert merged.queue_depth_peak == 999
    (site,) = merged.sites
    assert merged.sites[site][0] == 350
    # merge is order-insensitive for every counted field
    other = ProfileRecorder()
    other.merge_state(b.dump_state())
    other.merge_state(a.dump_state())
    assert other.events_dispatched == merged.events_dispatched
    assert {k: v[0] for k, v in other.sites.items()} == {
        k: v[0] for k, v in merged.sites.items()
    }
    json.dumps(merged.dump_state())  # JSON-safe payload


def test_profile_merges_across_worker_processes():
    def build(executor):
        obs = Observability(profile=ProfileRecorder())
        with obs_mod.activated(obs):
            plan = make_plan(
                "T", "quick", 2, [SMALL, OTHER],
                lambda results: _tiny_figure(results),
            )
            fig, _ = execute_plan(plan, executor=executor)
        obs.finalize()
        return fig, obs.profile

    _, serial = build(SerialExecutor())
    _, merged = build(ParallelExecutor(jobs=2))
    # deterministic fields merge exactly, whichever process ran them
    assert merged.events_dispatched == serial.events_dispatched
    assert merged.recomputes == serial.recomputes
    assert merged.recompute_flows == serial.recompute_flows
    assert merged.recompute_edges == serial.recompute_edges
    assert merged.queue_depth_peak == serial.queue_depth_peak
    assert {k: v[0] for k, v in merged.sites.items()} == {
        k: v[0] for k, v in serial.sites.items()
    }


def _tiny_figure(results):
    from repro.harness.figures import FigureResult, Series
    from repro.harness.experiment import spec_token

    rows = [
        Series(spec_token(s), [0.0], [r.write_bw[0]], [r.write_bw[1]])
        for s, r in sorted(results.items(), key=lambda kv: spec_token(kv[0]))
    ]
    return FigureResult(
        fig_id="T", title="T", xlabel="-",
        panels={"write": rows}, paper_expectation="",
    )


# ------------------------------------------------------- derived views


def test_hot_sites_order_and_events_per_second():
    prof = ProfileRecorder()
    prof.sites = {"b.slow": [5, 2.0], "a.fast": [100, 0.5], "c.tie": [5, 2.0]}
    prof.events_dispatched = 110
    prof.dispatch_wall = 4.5
    rows = prof.hot_sites()
    assert [r[0] for r in rows] == ["b.slow", "c.tie", "a.fast"]
    assert prof.events_per_second() == pytest.approx(110 / 4.5)
    assert prof.hot_sites(top=1) == [("b.slow", 5, 2.0)]


def test_collapsed_stacks_formats():
    prof = ProfileRecorder()
    prof.sites = {"core.Process._step": [7, 0.25]}
    prof.recomputes = 3
    prof.recompute_wall = 0.5
    assert prof.collapsed_stacks(metric="events") == [
        "sim.run;dispatch;core.Process._step 7",
        "sim.run;flownet.reallocate 3",
    ]
    wall_lines = prof.collapsed_stacks(metric="wall")
    assert wall_lines[0] == "sim.run;dispatch;core.Process._step 250000"
    assert wall_lines[1] == "sim.run;flownet.reallocate 500000"
    with pytest.raises(ValueError):
        prof.collapsed_stacks(metric="bogus")


def test_exporters_write_flame_and_json(tmp_path):
    prof = ProfileRecorder()
    run_ticks(20, profile=prof)
    folded = tmp_path / "p.folded"
    n = export_collapsed_stacks(str(folded), {"F1": prof, "F2": prof})
    lines = folded.read_text().splitlines()
    assert n == len(lines) == 2
    # multiple figures: the figure id becomes the root frame
    assert lines[0].startswith("F1;sim.run;dispatch;")
    assert lines[1].startswith("F2;sim.run;dispatch;")
    out = tmp_path / "p.json"
    export_profile_json(str(out), {"F1": prof})
    doc = json.loads(out.read_text())
    assert doc["schema"] == 1
    assert doc["profiles"]["F1"]["events_dispatched"] == 20
    assert doc["profiles"]["F1"]["hot_sites"][0]["events"] == 20


def test_render_hot_paths_mentions_engine_numbers():
    prof = ProfileRecorder()
    run_ticks(50, profile=prof)
    text = render_hot_paths(prof)
    assert "50" in text
    assert "events" in text


def test_reset_zeroes_everything():
    prof = ProfileRecorder()
    run_ticks(10, profile=prof)
    prof.reset()
    assert prof.events_dispatched == 0
    assert prof.sites == {}
    assert prof.dump_state() == ProfileRecorder().dump_state()


# ------------------------------------------------------- latency histogram


def test_bucket_boundaries_are_exact_dyadic_rationals():
    h = LatencyHistogram("t", substeps=64)
    for v in (1e-9, 3.7e-4, 0.5, 1.0, 2.0, 123.456):
        idx = h.bucket_index(v)
        lo, hi = h.bucket_bounds(idx)
        assert lo <= v < hi
        # bounds round-trip: the lower edge maps back to its own bucket
        assert h.bucket_index(lo) == idx
    # relative bucket width stays under the documented 1.6%
    lo, hi = h.bucket_bounds(h.bucket_index(1.0))
    assert (hi - lo) / lo < 0.016


def test_quantiles_exact_on_bucket_edges():
    h = LatencyHistogram("t")
    # powers of two sit exactly on bucket lower edges, so rank-based
    # lower-edge quantiles recover them exactly
    values = [2.0 ** -k for k in range(10)] * 10  # 100 samples
    for v in values:
        h.observe(v)
    assert h.count == 100
    assert h.quantile(0.0) == 2.0 ** -9  # rank clamps to 1 -> smallest
    assert h.quantile(0.5) == 2.0 ** -5  # rank 50: 5th of 10 decades
    assert h.quantile(1.0) == 1.0
    p50, p99, p999 = h.percentiles()
    assert (p50, p99, p999) == (2.0 ** -5, 1.0, 1.0)
    assert h.mean == pytest.approx(sum(values) / len(values))
    assert (h.vmin, h.vmax) == (2.0 ** -9, 1.0)


def test_zero_and_negative_observations():
    h = LatencyHistogram("t")
    h.observe(0.0)
    h.observe(0.0)
    h.observe(1.0)
    assert h.zeros == 2
    assert h.count == 3
    assert h.quantile(0.5) == 0.0
    assert h.quantile(1.0) == 1.0
    with pytest.raises(ConfigError):
        h.observe(-1e-9)
    with pytest.raises(ConfigError):
        h.quantile(1.5)


def test_empty_histogram_reports_zeroes():
    h = LatencyHistogram("t")
    assert h.count == 0
    assert h.mean == 0.0
    assert h.percentiles() == (0.0, 0.0, 0.0)


def test_registry_merge_reproduces_serial_histogram():
    serial = MetricsRegistry()
    h = serial.latency_histogram("op.lat")
    shards = [MetricsRegistry() for _ in range(3)]
    rng_values = [((i * 2654435761) % 997 + 1) / 997.0 for i in range(300)]
    for i, v in enumerate(rng_values):
        h.observe(v)
        shards[i % 3].latency_histogram("op.lat").observe(v)
    merged = MetricsRegistry()
    for shard in shards:
        merged.merge_state(shard.dump_state())
    m = merged.get("op.lat")
    # exact: bucket indices are value-deterministic, counts just add
    assert m.counts == h.counts
    assert (m.count, m.zeros, m.vmin, m.vmax) == (h.count, h.zeros, h.vmin, h.vmax)
    assert m.percentiles() == h.percentiles()
    assert m.total == pytest.approx(h.total)
    # mismatched resolutions must refuse to merge
    bad = MetricsRegistry()
    bad.latency_histogram("op.lat", substeps=32)
    with pytest.raises(ConfigError):
        bad.merge_state(serial.dump_state())


def test_latency_percentiles_identical_serial_vs_two_workers():
    # exact mode drives per-op client calls, so the per-op latency
    # histograms actually observe (aggregate mode batches lump flows)
    exact = [SMALL.with_(mode="exact"), OTHER.with_(mode="exact")]

    def build(executor):
        obs = Observability()
        with obs_mod.activated(obs):
            plan = make_plan(
                "T", "quick", 2, exact,
                lambda results: _tiny_figure(results),
            )
            execute_plan(plan, executor=executor)
        obs.finalize()
        return {
            inst.name: inst
            for inst in obs.registry
            if isinstance(inst, LatencyHistogram)
        }

    serial = build(SerialExecutor())
    merged = build(ParallelExecutor(jobs=2))
    assert sorted(serial) == sorted(merged)
    populated = 0
    for name, s in serial.items():
        m = merged[name]
        assert m.counts == s.counts, name
        assert (m.count, m.zeros, m.vmin, m.vmax) == (
            s.count, s.zeros, s.vmin, s.vmax,
        ), name
        assert m.percentiles() == s.percentiles(), name
        populated += s.count > 0
    assert populated > 0, "expected at least one observed latency histogram"


def test_client_without_obs_has_no_latency_instruments():
    with obs_mod.activated(None):
        cluster = Cluster(n_servers=2, n_clients=1, seed=0)
        pool = Pool(cluster)
        client = DaosClient(cluster, pool, cluster.clients[0])
    # dormancy: zero allocations, not even empty histograms
    assert not hasattr(client, "_m_lat")


def test_daos_op_latency_recorded_under_obs():
    obs = Observability()
    with obs_mod.activated(obs):
        cluster = Cluster(n_servers=2, n_clients=1, seed=0)
        pool = Pool(cluster)
        client = DaosClient(cluster, pool, cluster.clients[0])

        def flow():
            cont = yield from client.create_container("c", materialize=False)
            arr = yield from client.create_array(cont, oc="SX")
            yield from client.array_write(arr, 0, nbytes=4 * MiB)

        cluster.sim.process(flow())
        cluster.sim.run()
    obs.finalize()
    hist = obs.registry.get("daos.lat.arr-write")
    assert isinstance(hist, LatencyHistogram)
    assert hist.count == 1
    assert 0.0 < hist.quantile(0.5) <= hist.vmax
    # the snapshot and table carry the percentile columns
    snap = obs.registry.snapshot()["daos.lat.arr-write"]
    assert {"p50", "p99", "p999"} <= set(snap)
    assert "p50=" in obs.registry.render_table()
