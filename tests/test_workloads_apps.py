"""Field I/O, fdb-hammer, and raw-bandwidth probe workloads."""

import pytest

from repro.errors import ConfigError
from repro.hardware import Cluster
from repro.units import GiB, Gbps, MiB
from repro.workloads.common import CephEnv, DaosEnv, LustreEnv, WorkloadConfig
from repro.workloads.fdb_hammer import run_fdb_hammer
from repro.workloads.fieldio import run_fieldio
from repro.workloads.ior import run_ior
from repro.workloads.rawio import measure_dd, measure_iperf


def cfg(**kwargs):
    defaults = dict(
        n_client_nodes=2, ppn=2, ops_per_process=8, op_size=MiB, mode="aggregate"
    )
    defaults.update(kwargs)
    return WorkloadConfig(**defaults)


# -- raw I/O probes (paper Sec. III-A) -----------------------------------------


def test_dd_reproduces_paper_device_numbers():
    cluster = Cluster(n_servers=1, n_clients=0, seed=0)
    result = measure_dd(cluster, blocks=5)
    assert result.write_bw == pytest.approx(3.86 * GiB, rel=0.01)
    assert result.read_bw == pytest.approx(7.0 * GiB, rel=0.01)


def test_iperf_reproduces_line_rate():
    cluster = Cluster(n_servers=1, n_clients=1, seed=0)
    bw = measure_iperf(cluster)
    assert bw == pytest.approx(50 * Gbps, rel=0.01)


# -- Field I/O --------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["exact", "aggregate"])
def test_fieldio_runs(mode):
    env = DaosEnv(Cluster(n_servers=4, n_clients=2, seed=0))
    rec = run_fieldio(env, cfg(mode=mode))
    assert rec.bandwidth("write") > 0
    assert rec.bandwidth("read") > 0
    assert rec.get("write").bytes == 2 * 2 * 8 * MiB


def test_fieldio_rejects_wrong_env():
    cluster = Cluster(n_servers=2, n_clients=2)
    with pytest.raises(ConfigError):
        run_fieldio(LustreEnv(cluster), cfg())


def test_fieldio_exact_writes_ten_kv_entries_per_field():
    env = DaosEnv(Cluster(n_servers=4, n_clients=1, seed=0))
    run_fieldio(env, cfg(n_client_nodes=1, ppn=1, ops_per_process=4, mode="exact"))
    cont = env.pool.get_container("fieldio")
    from repro.daos.kv import DaosKV

    kvs = [o for o in cont.objects.values() if isinstance(o, DaosKV)]
    total_entries = sum(len(kv) for kv in kvs)
    assert total_entries == 4 * 10  # 10 index entries per field


def test_fieldio_read_slower_than_fdb_read():
    """Paper Sec. III-B: Field I/O's per-read size check makes its read
    path scale worse than fdb-hammer's."""
    c = cfg(ppn=4, ops_per_process=16)
    env1 = DaosEnv(Cluster(n_servers=4, n_clients=2, seed=0))
    fieldio = run_fieldio(env1, c)
    env2 = DaosEnv(Cluster(n_servers=4, n_clients=2, seed=0))
    fdb = run_fdb_hammer(env2, c, "DAOS")
    assert fieldio.bandwidth("read") < fdb.bandwidth("read")


# -- fdb-hammer -----------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["exact", "aggregate"])
def test_fdb_hammer_daos(mode):
    env = DaosEnv(Cluster(n_servers=4, n_clients=2, seed=0))
    rec = run_fdb_hammer(env, cfg(mode=mode), "DAOS")
    assert rec.bandwidth("write") > 0
    assert rec.bandwidth("read") > 0


@pytest.mark.parametrize("mode", ["exact", "aggregate"])
def test_fdb_hammer_lustre(mode):
    env = LustreEnv(Cluster(n_servers=4, n_clients=2, seed=0))
    rec = run_fdb_hammer(env, cfg(mode=mode), "LUSTRE")
    assert rec.bandwidth("write") > 0
    assert rec.bandwidth("read") > 0


@pytest.mark.parametrize("mode", ["exact", "aggregate"])
def test_fdb_hammer_rados(mode):
    env = CephEnv(Cluster(n_servers=4, n_clients=2, seed=0))
    rec = run_fdb_hammer(env, cfg(mode=mode), "RADOS")
    assert rec.bandwidth("write") > 0
    assert rec.bandwidth("read") > 0


def test_fdb_hammer_unknown_backend():
    env = DaosEnv(Cluster(n_servers=2, n_clients=2))
    with pytest.raises(ConfigError):
        run_fdb_hammer(env, cfg(), "NFS")


def test_fdb_hammer_env_mismatch():
    env = DaosEnv(Cluster(n_servers=2, n_clients=2))
    with pytest.raises(ConfigError):
        run_fdb_hammer(env, cfg(), "RADOS")


def test_fdb_lustre_write_fast_read_mds_bound():
    """Paper Fig. 7 shape: buffered writes near IOR; reads MDS-limited."""
    c = cfg(n_client_nodes=2, ppn=16, ops_per_process=64)
    env = LustreEnv(Cluster(n_servers=2, n_clients=2, seed=0))
    fdb = run_fdb_hammer(env, c, "LUSTRE")
    env2 = LustreEnv(Cluster(n_servers=2, n_clients=2, seed=0))
    ior = run_ior(env2, c, "LUSTRE")
    # write within ~30% of IOR
    assert fdb.bandwidth("write") > 0.6 * ior.bandwidth("write")
    # read clearly below IOR's
    assert fdb.bandwidth("read") < 0.8 * ior.bandwidth("read")


def test_fdb_daos_beats_fdb_lustre_on_read():
    """Paper Fig. 9 shape: small-I/O reads favour DAOS over Lustre —
    once there are enough clients to push the single MDS to saturation
    (the paper used up to 32 client nodes)."""
    c = cfg(n_client_nodes=16, ppn=32, ops_per_process=64)
    daos = run_fdb_hammer(DaosEnv(Cluster(16, 16, seed=0)), c, "DAOS")
    lustre = run_fdb_hammer(LustreEnv(Cluster(16, 16, seed=0)), c, "LUSTRE")
    assert daos.bandwidth("read") > 1.3 * lustre.bandwidth("read")
    # and the Lustre read ceiling sits near the paper's ~40 GiB/s
    assert lustre.bandwidth("read") == pytest.approx(40 * GiB, rel=0.3)


def test_fdb_ceph_write_efficiency_ceiling():
    """Paper Fig. 8 shape: fdb on Ceph tops out near 2/3 of the
    write roofline."""
    c = cfg(n_client_nodes=2, ppn=32, ops_per_process=64, batches=1)
    env = CephEnv(Cluster(n_servers=2, n_clients=2, seed=0))
    rec = run_fdb_hammer(env, c, "RADOS")
    roofline = 2 * 3.86 * GiB
    w = rec.bandwidth("write")
    assert w <= 0.72 * roofline
    assert w >= 0.45 * roofline
