"""Flow network: max-min fairness, weights, demand caps, event integration."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator
from repro.sim.flownet import FlowNetwork
from repro.units import GiB, MiB


def make_net():
    sim = Simulator()
    return sim, FlowNetwork(sim)


def run_flows(sim, net, specs):
    """Start flows per spec dicts and return dict name -> completion time."""
    done_at = {}

    def driver(spec):
        if spec.get("start_delay"):
            yield sim.timeout(spec["start_delay"])
        flow = net.transfer(
            spec["size"],
            spec["usages"],
            demand_cap=spec.get("demand_cap", math.inf),
            name=spec["name"],
        )
        yield flow.done
        done_at[spec["name"]] = sim.now

    for spec in specs:
        sim.process(driver(spec))
    sim.run()
    return done_at


def test_single_flow_uses_full_capacity():
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    done = run_flows(sim, net, [{"name": "f", "size": 500.0, "usages": [(link, 1.0)]}])
    assert done["f"] == pytest.approx(5.0)


def test_two_equal_flows_share_evenly():
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    specs = [
        {"name": "a", "size": 500.0, "usages": [(link, 1.0)]},
        {"name": "b", "size": 500.0, "usages": [(link, 1.0)]},
    ]
    done = run_flows(sim, net, specs)
    assert done["a"] == pytest.approx(10.0)
    assert done["b"] == pytest.approx(10.0)


def test_short_flow_finishes_then_long_flow_speeds_up():
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    specs = [
        {"name": "short", "size": 100.0, "usages": [(link, 1.0)]},
        {"name": "long", "size": 500.0, "usages": [(link, 1.0)]},
    ]
    done = run_flows(sim, net, specs)
    # Both run at 50 until t=2 (short done, 100 units each);
    # long then has 400 left at rate 100 -> finishes at t=6.
    assert done["short"] == pytest.approx(2.0)
    assert done["long"] == pytest.approx(6.0)


def test_late_arrival_slows_existing_flow():
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    specs = [
        {"name": "first", "size": 400.0, "usages": [(link, 1.0)]},
        {"name": "late", "size": 100.0, "usages": [(link, 1.0)], "start_delay": 1.0},
    ]
    done = run_flows(sim, net, specs)
    # first: 100 units in [0,1]; then 50/s each. late finishes at t=3.
    # first then has 400-100-100=200 left at 100/s -> t=5.
    assert done["late"] == pytest.approx(3.0)
    assert done["first"] == pytest.approx(5.0)


def test_bottleneck_and_non_bottleneck_links():
    sim, net = make_net()
    big = net.add_link("big", 1000.0)
    small = net.add_link("small", 10.0)
    specs = [
        # a crosses both links; small is its bottleneck.
        {"name": "a", "size": 100.0, "usages": [(big, 1.0), (small, 1.0)]},
        # b crosses only the big link and should get the leftovers.
        {"name": "b", "size": 990.0 * 2, "usages": [(big, 1.0)]},
    ]
    done = run_flows(sim, net, specs)
    # Max-min: a gets 10 (small saturates), b gets 990.
    assert done["a"] == pytest.approx(10.0)
    assert done["b"] == pytest.approx(2.0)


def test_weighted_flow_consumes_amplified_capacity():
    """Erasure-coded writes consume 1.5x device bandwidth (paper Fig. 6)."""
    sim, net = make_net()
    ssd = net.add_link("ssd", 150.0)
    specs = [{"name": "ec", "size": 300.0, "usages": [(ssd, 1.5)]}]
    done = run_flows(sim, net, specs)
    # Progress rate = 150/1.5 = 100 units/s -> 3 s.
    assert done["ec"] == pytest.approx(3.0)


def test_weighted_fairness_between_protected_and_plain():
    sim, net = make_net()
    ssd = net.add_link("ssd", 100.0)
    specs = [
        {"name": "plain", "size": 200.0, "usages": [(ssd, 1.0)]},
        {"name": "ec", "size": 200.0, "usages": [(ssd, 1.5)]},
    ]
    run_flows(sim, net, specs)
    # Max-min on progress rate: both frozen when 1.0r + 1.5r = 100 -> r = 40.
    # Both finish at t=5 together; verify via link accounting instead.
    assert ssd.busy_integral == pytest.approx(200.0 * 1.0 + 200.0 * 1.5)


def test_demand_cap_limits_rate():
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    specs = [
        {"name": "capped", "size": 100.0, "usages": [(link, 1.0)], "demand_cap": 10.0},
        {"name": "free", "size": 360.0, "usages": [(link, 1.0)]},
    ]
    done = run_flows(sim, net, specs)
    # capped runs at 10; free gets the remaining 90.
    assert done["capped"] == pytest.approx(10.0)
    assert done["free"] == pytest.approx(4.0)


def test_demand_cap_without_links():
    sim, net = make_net()
    done = run_flows(
        sim, net, [{"name": "cpu", "size": 50.0, "usages": [], "demand_cap": 25.0}]
    )
    assert done["cpu"] == pytest.approx(2.0)


def test_unconstrained_flow_rejected():
    sim, net = make_net()
    with pytest.raises(SimulationError):
        net.transfer(10.0, [], name="bad")


def test_zero_size_flow_completes_instantly():
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    flow = net.transfer(0.0, [(link, 1.0)], name="empty")
    assert flow.done.fired
    assert flow.finished_at == 0.0


def test_duplicate_links_merge_weights():
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    specs = [
        {"name": "dup", "size": 100.0, "usages": [(link, 1.0), (link, 1.0)]},
    ]
    done = run_flows(sim, net, specs)
    # Weight 2.0 total -> rate 50 -> 2 s.
    assert done["dup"] == pytest.approx(2.0)


def test_negative_weight_rejected():
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    with pytest.raises(SimulationError):
        net.transfer(10.0, [(link, -1.0)])


def test_negative_size_rejected():
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    with pytest.raises(SimulationError):
        net.transfer(-1.0, [(link, 1.0)])


def test_duplicate_link_name_rejected():
    _, net = make_net()
    net.add_link("x", 1.0)
    with pytest.raises(SimulationError):
        net.add_link("x", 1.0)


def test_unknown_link_lookup():
    _, net = make_net()
    with pytest.raises(SimulationError):
        net.link("nope")


def test_nonpositive_capacity_rejected():
    _, net = make_net()
    with pytest.raises(SimulationError):
        net.add_link("zero", 0.0)


def test_cancel_fails_waiter_and_frees_capacity():
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    outcome = {}

    def victim():
        flow = net.transfer(1000.0, [(link, 1.0)], name="victim")
        try:
            yield flow.done
        except SimulationError:
            outcome["cancelled_at"] = sim.now
        return None

    def survivor():
        yield sim.timeout(0.0)
        flow = net.transfer(400.0, [(link, 1.0)], name="survivor")
        yield flow.done
        outcome["survivor_done"] = sim.now

    def canceller():
        yield sim.timeout(2.0)
        victim_flow = [f for f in net.active_flows if f.name == "victim"][0]
        net.cancel(victim_flow)

    sim.process(victim())
    sim.process(survivor())
    sim.process(canceller())
    sim.run()
    assert outcome["cancelled_at"] == pytest.approx(2.0)
    # survivor: 2s at 50/s = 100 done, then 300 left at 100/s -> t=5.
    assert outcome["survivor_done"] == pytest.approx(5.0)


def test_set_capacity_midflight():
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    done = {}

    def flow_proc():
        flow = net.transfer(1000.0, [(link, 1.0)], name="f")
        yield flow.done
        done["t"] = sim.now

    def degrade():
        yield sim.timeout(5.0)
        net.set_capacity("pipe", 50.0)

    sim.process(flow_proc())
    sim.process(degrade())
    sim.run()
    # 500 at 100/s, then 500 at 50/s -> 5 + 10 = 15 s.
    assert done["t"] == pytest.approx(15.0)


def test_many_flows_fair_share_scales():
    sim, net = make_net()
    link = net.add_link("pipe", float(100 * MiB))
    n = 64
    specs = [
        {"name": f"f{i}", "size": float(10 * MiB), "usages": [(link, 1.0)]}
        for i in range(n)
    ]
    done = run_flows(sim, net, specs)
    expected = n * 10 * MiB / (100 * MiB)
    for name, t in done.items():
        assert t == pytest.approx(expected), name


def test_utilization_accounting():
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    run_flows(sim, net, [{"name": "f", "size": 500.0, "usages": [(link, 1.0)]}])
    assert link.busy_integral == pytest.approx(500.0)
    assert link.mean_utilization(elapsed=5.0) == pytest.approx(1.0)
    assert link.mean_utilization(elapsed=10.0) == pytest.approx(0.5)
    assert link.mean_utilization(elapsed=0.0) == 0.0


def test_paper_roofline_example():
    """16 servers x 3.86 GiB/s SSD write, clients behind 6.25 GiB/s NICs:
    aggregate write bandwidth approaches 61.76 GiB/s (paper Sec. III-B)."""
    sim, net = make_net()
    n_servers, n_clients = 16, 16
    ssd = [net.add_link(f"ssd{i}", 3.86 * GiB) for i in range(n_servers)]
    nic = [net.add_link(f"nic{i}", 6.25 * GiB) for i in range(n_clients)]
    total = 0.0
    specs = []
    per_flow = 1.0 * GiB
    for c in range(n_clients):
        usages = [(nic[c], 1.0)] + [(s, 1.0 / n_servers) for s in ssd]
        specs.append({"name": f"c{c}", "size": per_flow, "usages": usages})
        total += per_flow
    done = run_flows(sim, net, specs)
    elapsed = max(done.values())
    agg = total / elapsed
    assert agg == pytest.approx(61.76 * GiB, rel=1e-6)


def test_reallocation_counter_increments():
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    before = net.reallocations
    run_flows(sim, net, [{"name": "f", "size": 100.0, "usages": [(link, 1.0)]}])
    assert net.reallocations > before


def test_epsilon_batched_completions_fire_together():
    """Flows finishing within the epsilon window complete in one event
    (one batch) rather than triggering a reallocation storm."""
    sim = Simulator()
    net = FlowNetwork(sim, time_epsilon=1e-6)
    link = net.add_link("pipe", 1000.0)
    done_times = []

    def driver(size):
        flow = net.transfer(size, [(link, 1.0)])
        yield flow.done
        done_times.append(sim.now)

    # sizes within a hair of each other: equal shares -> near-equal ETAs
    for size in (100.0, 100.0 + 1e-7, 100.0 + 2e-7):
        sim.process(driver(size))
    before = net.reallocations
    sim.run()
    assert len(done_times) == 3
    assert max(done_times) - min(done_times) < 1e-5
    # 1 realloc per arrival + 1 for the single completion batch (+ slack)
    assert net.reallocations - before <= 5


def test_near_saturated_link_freezes_within_tolerance():
    """A link left within the relative tolerance of saturation freezes
    its flows in the same round instead of spinning micro-rounds on the
    residual capacity."""
    sim, net = make_net()
    l0 = net.add_link("l0", 10.0)
    # capacity such that the first fill leaves ~1e-12 of slack: inside
    # the 1e-9 relative tolerance, outside exact-zero
    l1 = net.add_link("l1", 10.0 + 1e-12)
    specs = [
        {"name": "a", "size": 50.0, "usages": [(l0, 1.0), (l1, 1.0)]},
        {"name": "b", "size": 50.0, "usages": [(l1, 1.0)]},
    ]
    before = net.reallocations
    done = run_flows(sim, net, specs)
    # both freeze at rate 5 when l1 saturates within tolerance
    assert done["a"] == pytest.approx(10.0)
    assert done["b"] == pytest.approx(10.0)
    # 2 arrivals + 1 completion batch (+ slack): no micro-round storm
    assert net.reallocations - before <= 4


def test_demand_cap_only_flow_coexists_with_linked_traffic():
    """Linkless (demand-cap-only) flows ride the dirty-flow path: their
    arrival must trigger a solve even though no link membership changed,
    and linked churn around them must not disturb their capped rate."""
    sim, net = make_net()
    link = net.add_link("pipe", 100.0)
    specs = [
        {"name": "cpu", "size": 100.0, "usages": [], "demand_cap": 25.0},
        {"name": "io1", "size": 100.0, "usages": [(link, 1.0)]},
        {"name": "io2", "size": 100.0, "usages": [(link, 1.0)], "start_delay": 2.0},
        {"name": "cpu2", "size": 30.0, "usages": [], "demand_cap": 10.0, "start_delay": 1.0},
    ]
    done = run_flows(sim, net, specs)
    # cap-only flows run at their cap regardless of link churn
    assert done["cpu"] == pytest.approx(4.0)
    assert done["cpu2"] == pytest.approx(4.0)
    assert done["io1"] == pytest.approx(1.0)
    assert done["io2"] == pytest.approx(3.0)


# Capacity/cap pair where freezing the linked flow leaves the capped
# flow's rate a hair *below* its cap — outside the 1e-12 at-cap window
# (the float sum ``LINK_CAP + (NEAR_MISS_CAP - LINK_CAP)`` undershoots
# ``NEAR_MISS_CAP`` by ~4e-9).  Exercises the filling's numerical
# corner branches.
NEAR_MISS_CAP = 23385136.580731507
LINK_CAP = 2699422.8106198553


def _force_solver(net, vector):
    """Pin the net to one solver implementation via the size thresholds."""
    if vector:
        net._SCALAR_MAX_FLOWS = 0
    else:
        net._SCALAR_MAX_FLOWS = 10**9
        net._SCALAR_MAX_EDGES = 10**9


@pytest.mark.parametrize("vector", [False, True], ids=["scalar", "vector"])
def test_force_freeze_on_binding_link(vector):
    """At-cap near-miss on a flow that still has a link: the filling
    force-freezes it on its binding link and the simulation proceeds
    (no stall, completion time within a rounding error of the cap)."""
    sim, net = make_net()
    _force_solver(net, vector)
    wide = net.add_link("wide", 1e12)
    narrow = net.add_link("narrow", LINK_CAP)
    size = NEAR_MISS_CAP * 2.0
    specs = [
        {"name": "capped", "size": size, "usages": [(wide, 1.0)],
         "demand_cap": NEAR_MISS_CAP},
        {"name": "helper", "size": LINK_CAP * 0.5, "usages": [(narrow, 1.0)]},
    ]
    done = run_flows(sim, net, specs)
    assert done["capped"] == pytest.approx(size / NEAR_MISS_CAP, rel=1e-6)
    assert done["helper"] == pytest.approx(0.5)


@pytest.mark.parametrize("vector", [False, True], ids=["scalar", "vector"])
def test_stalled_filling_names_the_stuck_flows(vector):
    """Same near-miss but the capped flow has *no* links: there is no
    binding link to force-freeze on, so the filling fails loudly with a
    diagnostic naming the stuck flow instead of leaving it at rate 0."""
    sim, net = make_net()
    _force_solver(net, vector)
    link = net.add_link("pipe", LINK_CAP)
    net.transfer(1e12, [(link, 1.0)], name="greedy")
    with pytest.raises(SimulationError, match=r"stalled.*blocked"):
        net.transfer(1e12, [], demand_cap=NEAR_MISS_CAP, name="blocked")


def test_scalar_and_vector_solvers_bitwise_identical():
    """The two solver implementations are interchangeable bit for bit:
    a mixed weighted/capped/staggered scenario completes at *identical*
    float times under both."""
    def run(vector):
        sim, net = make_net()
        _force_solver(net, vector)
        l0 = net.add_link("l0", 97.0)
        l1 = net.add_link("l1", 31.0)
        l2 = net.add_link("l2", 7.3)
        specs = [
            {"name": "a", "size": 100.0, "usages": [(l0, 1.0), (l1, 0.3)]},
            {"name": "b", "size": 55.5, "usages": [(l1, 1.7)], "demand_cap": 9.1},
            {"name": "c", "size": 70.0, "usages": [(l2, 1.0), (l0, 0.1)],
             "start_delay": 0.7},
            {"name": "d", "size": 12.0, "usages": [], "demand_cap": 3.7,
             "start_delay": 1.3},
            {"name": "e", "size": 200.0, "usages": [(l0, 2.0), (l1, 0.9), (l2, 0.2)],
             "start_delay": 2.9},
        ]
        return run_flows(sim, net, specs)

    scalar = run(vector=False)
    vector = run(vector=True)
    assert scalar == vector  # exact: solvers share one IEEE-754 op sequence


def test_run_until_leaves_flows_consistent():
    """Pausing the simulator mid-flight and resuming must not lose
    progress or duplicate it."""
    sim = Simulator()
    net = FlowNetwork(sim)
    link = net.add_link("pipe", 100.0)
    state = {}

    def driver():
        flow = net.transfer(1000.0, [(link, 1.0)])
        state["flow"] = flow
        yield flow.done
        state["done_at"] = sim.now

    sim.process(driver())
    sim.run(until=4.0)
    assert "done_at" not in state
    sim.run()
    assert state["done_at"] == pytest.approx(10.0)
