"""Service pools and token buckets."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator
from repro.sim.resources import ServicePool, TokenBucket


def test_service_pool_throughput_bound():
    sim = Simulator()
    pool = ServicePool(sim, workers=2, service_time=1.0)
    finish = []

    def client():
        yield from pool.request()
        finish.append(sim.now)

    for _ in range(6):
        sim.process(client())
    sim.run()
    # 6 requests, 2 workers, 1 s each -> waves at t=1,2,3.
    assert finish == [1.0, 1.0, 2.0, 2.0, 3.0, 3.0]
    assert pool.completed == 6
    assert pool.busy_time == pytest.approx(6.0)


def test_service_pool_amount_scales_service_time():
    sim = Simulator()
    pool = ServicePool(sim, workers=1, service_time=0.5)

    def client():
        spent = yield from pool.request(amount=4.0)
        return (sim.now, spent)

    proc = sim.process(client())
    sim.run()
    assert proc.result == (2.0, 2.0)


def test_service_pool_callable_service_time():
    sim = Simulator()
    pool = ServicePool(sim, workers=1, service_time=lambda n: 0.1 + 0.2 * n)

    def client():
        yield from pool.request(amount=2.0)
        return sim.now

    proc = sim.process(client())
    sim.run()
    assert proc.result == pytest.approx(0.5)


def test_service_pool_queue_length_visible():
    sim = Simulator()
    pool = ServicePool(sim, workers=1, service_time=10.0)
    seen = {}

    def client():
        yield from pool.request()

    def observer():
        yield sim.timeout(1.0)
        seen["queued"] = pool.queue_length

    for _ in range(4):
        sim.process(client())
    sim.process(observer())
    sim.run()
    assert seen["queued"] == 3


def test_service_pool_rejects_zero_workers():
    with pytest.raises(SimulationError):
        ServicePool(Simulator(), workers=0, service_time=1.0)


def test_token_bucket_burst_then_rate_limit():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=10.0, burst=5.0)
    times = []

    def client():
        for _ in range(3):
            yield from bucket.take(5.0)
            times.append(sim.now)

    sim.process(client())
    sim.run()
    # First take uses the initial burst; each refill of 5 takes 0.5 s.
    assert times[0] == pytest.approx(0.0)
    assert times[1] == pytest.approx(0.5)
    assert times[2] == pytest.approx(1.0)


def test_token_bucket_accrues_while_idle_up_to_burst():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=1.0, burst=3.0)

    def client():
        yield from bucket.take(3.0)  # drain the burst at t=0
        yield sim.timeout(100.0)  # tokens cap at burst=3 during the idle gap
        yield from bucket.take(3.0)  # satisfied immediately from the cap
        return sim.now

    proc = sim.process(client())
    sim.run()
    assert proc.result == pytest.approx(100.0)


def test_token_bucket_take_exceeding_burst_rejected():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=1.0, burst=2.0)

    def client():
        yield from bucket.take(3.0)

    sim.process(client())
    with pytest.raises(SimulationError):
        sim.run()


def test_token_bucket_contention_is_fifo():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=1.0, burst=1.0)
    order = []

    def client(tag):
        yield from bucket.take(1.0)
        order.append(tag)

    for tag in "abc":
        sim.process(client(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_token_bucket_invalid_params():
    with pytest.raises(SimulationError):
        TokenBucket(Simulator(), rate=0.0, burst=1.0)
    with pytest.raises(SimulationError):
        TokenBucket(Simulator(), rate=1.0, burst=0.0)
