"""Timeline sampler: exact window-average utilisation, saturation shape,
exporters, and sparkline rendering."""

import csv
import io
import json

import pytest

import repro.obs as obs_mod
from repro.errors import ConfigError
from repro.harness.experiment import PointSpec, run_point
from repro.hardware.cluster import Cluster
from repro.obs import Observability, TimelineConfig, activated
from repro.obs.timeline import (
    Timeline,
    TimelineSampler,
    export_timelines_csv,
    export_timelines_json,
    render_timeline,
    sparkline,
)


def observed_cluster(o, seed=0, **kwargs):
    with activated(o):
        return Cluster(n_servers=1, n_clients=1, seed=seed, **kwargs)


# -- Timeline container ----------------------------------------------------------


def test_timeline_backfills_late_columns():
    tl = Timeline(run_index=0, interval=0.5)
    tl.add_sample(0.5, {"a": 1.0})
    tl.add_sample(1.0, {"a": 2.0, "b": 7.0})
    tl.add_sample(1.5, {"b": 8.0})
    assert tl.times == [0.5, 1.0, 1.5]
    assert tl.column("a") == [1.0, 2.0, 0.0]  # absent -> 0.0
    assert tl.column("b") == [0.0, 7.0, 8.0]  # late -> zero-backfilled
    assert tl.peak("b") == 8.0
    assert tl.mean("a") == pytest.approx(1.0)


def test_config_validation():
    o = Observability()
    cluster = observed_cluster(o)
    with pytest.raises(ConfigError):
        TimelineSampler(cluster, TimelineConfig(interval=0.0))


# -- exact sampling on a hand-built flow -----------------------------------------


def test_window_average_utilisation_is_exact():
    """One flow at a known rate: every sample window must read the exact
    analytic utilisation, including the final partial window."""
    o = Observability(timeline=TimelineConfig(interval=1.0, sample_gauges=False))
    cluster = observed_cluster(o)
    link = cluster.net.add_link("srv9.test.w", 100.0)
    # 250 units over a 100 u/s link, demand-capped to 50 u/s -> 5 s at 50%
    cluster.net.transfer(250.0, [(link, 1.0)], demand_cap=50.0, name="t")
    cluster.sim.run()
    o.finalize()
    tl = o.timelines[0]
    assert tl.times == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0])
    assert tl.column("util:srv9.test.w") == pytest.approx([0.5] * 5)
    # the flow is demand-capped, so its binding must be the cap
    flow_spans = [s for s in o.tracer.finished if s.cat == "flownet"]
    assert flow_spans[0].args["binding"] == pytest.approx({"cap": 5.0})


def test_final_partial_window_recorded():
    o = Observability(timeline=TimelineConfig(interval=2.0, sample_gauges=False))
    cluster = observed_cluster(o)
    link = cluster.net.add_link("srv9.test.w", 100.0)
    cluster.net.transfer(300.0, [(link, 1.0)], name="t")  # 3 s at 100%
    cluster.sim.run()
    o.finalize()
    tl = o.timelines[0]
    assert tl.times == pytest.approx([2.0, 3.0])  # 3.0 is the partial window
    assert tl.column("util:srv9.test.w") == pytest.approx([1.0, 1.0])


def test_inflight_and_device_filtering():
    o = Observability(timeline=TimelineConfig(interval=1.0, sample_gauges=False))
    cluster = observed_cluster(o)
    agg = cluster.net.add_link("srv5.ssdagg.w", 100.0)
    dev = cluster.net.add_link("srv5.ssd0.w", 100.0)
    cluster.net.transfer(100.0, [(agg, 1.0), (dev, 1.0)], name="t")
    cluster.sim.run()
    o.finalize()
    tl = o.timelines[0]
    assert "util:srv5.ssdagg.w" in tl.series
    assert "util:srv5.ssd0.w" not in tl.series  # device links filtered
    assert tl.column("flows.active") == pytest.approx([1.0])
    assert tl.column("inflight:srv5") == pytest.approx([1.0])
    # include_devices=True keeps them
    o2 = Observability(timeline=TimelineConfig(
        interval=1.0, sample_gauges=False, include_devices=True))
    c2 = observed_cluster(o2, seed=1)
    agg2 = c2.net.add_link("srv5.ssdagg.w", 100.0)
    dev2 = c2.net.add_link("srv5.ssd0.w", 100.0)
    c2.net.transfer(100.0, [(agg2, 1.0), (dev2, 1.0)], name="t")
    c2.sim.run()
    o2.finalize()
    assert "util:srv5.ssd0.w" in o2.timelines[0].series


# -- acceptance: saturation shape during an IOR write ----------------------------


def test_ior_write_pins_server_ssd_channel():
    """The paper's bottleneck claim, visible in the time series: during
    an IOR write the server SSD write channel runs pinned near 1.0."""
    o = Observability(timeline=TimelineConfig(interval=0.005))
    spec = PointSpec(workload="ior", store="daos", api="DAOS",
                     n_servers=2, n_client_nodes=2, ppn=8, ops_per_process=16)
    run_point(spec, reps=1, obs=o)
    o.finalize()
    tl = o.timelines[0]
    assert len(tl) > 10
    col = tl.column("util:srv0.ssdagg.w")
    assert col, "SSD aggregate series missing"
    assert max(col) >= 0.9, f"expected near-saturation, peak {max(col):.2f}"
    # saturation is sustained, not a blip: several consecutive samples hot
    hot = sum(1 for v in col if v >= 0.9)
    assert hot >= 3
    # and the write phase ends: the tail of the run is not write-hot
    assert col[-1] < 0.5


def test_run_with_timeline_has_no_extra_events():
    """The sampler must not schedule events or perturb the schedule."""
    spec = PointSpec(workload="ior", store="daos", api="DFS",
                     n_servers=2, n_client_nodes=2, ppn=4, ops_per_process=8)
    o_plain = Observability()
    run_point(spec, reps=1, base_seed=5, obs=o_plain)
    o_tl = Observability(timeline=TimelineConfig(interval=0.001))
    run_point(spec, reps=1, base_seed=5, obs=o_tl)
    plain_events = o_plain.registry.counter("sim.events_executed").value
    tl_events = o_tl.registry.counter("sim.events_executed").value
    assert plain_events == tl_events


# -- exporters -------------------------------------------------------------------


def _two_timelines():
    a = Timeline(0, 0.5)
    a.add_sample(0.5, {"util:x": 0.25})
    a.add_sample(1.0, {"util:x": 0.75})
    b = Timeline(1, 0.5)
    b.add_sample(0.5, {"util:y": 1.0})
    return [a, b]


def test_csv_export_long_format(tmp_path):
    out = tmp_path / "tl.csv"
    rows = export_timelines_csv(str(out), _two_timelines())
    assert rows == 3
    with open(out) as fh:
        records = list(csv.DictReader(fh))
    assert len(records) == 3
    assert records[0] == {"run": "0", "time": "0.5", "series": "util:x", "value": "0.25"}
    assert {r["run"] for r in records} == {"0", "1"}


def test_json_export_schema(tmp_path):
    out = tmp_path / "tl.json"
    export_timelines_json(str(out), _two_timelines())
    doc = json.loads(out.read_text())
    assert doc["schema"] == 1
    assert len(doc["runs"]) == 2
    assert doc["runs"][0]["series"]["util:x"] == [0.25, 0.75]
    buf = io.StringIO()
    export_timelines_json(buf, _two_timelines())  # file-object path too
    assert json.loads(buf.getvalue())["schema"] == 1


# -- sparklines ------------------------------------------------------------------


def test_sparkline_scaling_and_downsampling():
    assert sparkline([]) == ""
    assert sparkline([0.0, 1.0], hi=1.0) == "▁█"
    assert sparkline([0.5, 0.5], hi=1.0) == "▅▅"  # mid-scale (rounds up)
    flat = sparkline([3.0, 3.0, 3.0])  # auto-scale: flat series at its max
    assert flat == "███"
    assert sparkline([0.0, 0.0]) == "▁▁"  # all-zero has no span
    wide = sparkline(list(range(100)), width=10)
    assert len(wide) == 10
    assert wide[0] == "▁" and wide[-1] == "█"


def test_render_timeline_shows_hot_series():
    tl = Timeline(0, 0.5)
    tl.add_sample(0.5, {"util:srv0.ssdagg.w": 1.0, "util:cli0.nic.tx": 0.2,
                        "flows.active": 4.0})
    text = render_timeline(tl)
    assert "srv0.ssdagg.w" in text
    assert "in-flight flows" in text
    assert "█" in text
