"""Analysis utilities: rooflines, fits, plateaus, crossovers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    crossover,
    detect_plateau,
    efficiency,
    linear_fit,
    read_roofline,
    scaling_efficiency,
    write_roofline,
)
from repro.errors import InvalidArgumentError
from repro.units import GiB


# -- rooflines (paper Sec. III-A/B numbers) ------------------------------------


def test_write_roofline_paper_value():
    assert write_roofline(16) == pytest.approx(61.76 * GiB)
    assert write_roofline(1) == pytest.approx(3.86 * GiB)
    assert write_roofline(24) == pytest.approx(92.64 * GiB)


def test_read_roofline_server_vs_client_bound():
    assert read_roofline(16, n_client_nodes=32) == pytest.approx(100 * GiB)
    assert read_roofline(16, n_client_nodes=8) == pytest.approx(50 * GiB)


def test_roofline_validation():
    with pytest.raises(InvalidArgumentError):
        write_roofline(0)
    with pytest.raises(InvalidArgumentError):
        read_roofline(0)


def test_efficiency():
    assert efficiency(58 * GiB, write_roofline(16)) == pytest.approx(0.939, rel=1e-2)
    with pytest.raises(InvalidArgumentError):
        efficiency(1.0, 0.0)


# -- linear fit -----------------------------------------------------------------


def test_linear_fit_exact_line():
    slope, intercept, r2 = linear_fit([1, 2, 3, 4], [2, 4, 6, 8])
    assert slope == pytest.approx(2.0)
    assert intercept == pytest.approx(0.0, abs=1e-9)
    assert r2 == pytest.approx(1.0)


def test_linear_fit_flat_line():
    slope, _, r2 = linear_fit([1, 2, 3], [5, 5, 5])
    assert slope == pytest.approx(0.0, abs=1e-12)
    assert r2 == pytest.approx(1.0)  # perfectly explained (zero variance)


def test_linear_fit_validation():
    with pytest.raises(InvalidArgumentError):
        linear_fit([1], [1])
    with pytest.raises(InvalidArgumentError):
        linear_fit([1, 2], [1])


@given(
    slope=st.floats(0.1, 10.0),
    intercept=st.floats(-5.0, 5.0),
)
def test_linear_fit_recovers_parameters(slope, intercept):
    xs = [1.0, 2.0, 4.0, 8.0, 16.0]
    ys = [slope * x + intercept for x in xs]
    got_slope, got_intercept, r2 = linear_fit(xs, ys)
    assert got_slope == pytest.approx(slope, rel=1e-6)
    assert got_intercept == pytest.approx(intercept, rel=1e-4, abs=1e-6)
    assert r2 > 0.999999


# -- scaling efficiency --------------------------------------------------------------


def test_scaling_efficiency_linear_is_one():
    assert scaling_efficiency([2, 4, 8], [10, 20, 40]) == pytest.approx(1.0)


def test_scaling_efficiency_flat_curve():
    # 4x more servers, no gain: efficiency 1/4
    assert scaling_efficiency([2, 8], [10, 10]) == pytest.approx(0.25)


def test_scaling_efficiency_validation():
    with pytest.raises(InvalidArgumentError):
        scaling_efficiency([0, 1], [1, 2])


# -- plateau detection -----------------------------------------------------------------


def test_detect_plateau_paper_shape():
    """HDF5/libdaos in Fig. 5: grows to ~4 servers then flattens."""
    xs = [2, 4, 8, 16, 24]
    ys = [10.0, 19.0, 21.0, 21.4, 21.4]
    assert detect_plateau(xs, ys) == 8.0  # strictly flat from 8 at 10%
    assert detect_plateau(xs, ys, tolerance=0.15) == 4.0  # knee at 4


def test_detect_plateau_none_when_growing():
    xs = [2, 4, 8, 16, 24]
    ys = [7.7, 15.4, 30.9, 61.8, 92.6]  # near-ideal scaling
    assert detect_plateau(xs, ys) is None


def test_detect_plateau_immediately_flat():
    assert detect_plateau([1, 2, 3], [5.0, 5.1, 4.9]) == 1.0


def test_detect_plateau_tolerance():
    xs = [1, 2, 3]
    ys = [10.0, 11.0, 11.5]
    assert detect_plateau(xs, ys, tolerance=0.05) == 2.0
    assert detect_plateau(xs, ys, tolerance=0.20) == 1.0


# -- crossover ---------------------------------------------------------------------------


def test_crossover_interpolates():
    xs = [1, 2, 3]
    a = [1.0, 3.0, 5.0]
    b = [4.0, 4.0, 4.0]
    # a - b: -3, -1, +1 -> crossover between x=2 and x=3 at 2.5
    assert crossover(xs, a, b) == pytest.approx(2.5)


def test_crossover_none_when_always_apart():
    assert crossover([1, 2], [1.0, 2.0], [5.0, 6.0]) is None


def test_crossover_exact_touch():
    assert crossover([1, 2, 3], [1.0, 2.0, 3.0], [1.0, 5.0, 6.0]) == 1.0
