"""Ceph erasure-coded pools: the sharding-via-EC path of Sec. III-F."""

import pytest

from repro.ceph import CephCluster, RadosClient
from repro.errors import DataLossError, InvalidArgumentError
from repro.hardware import Cluster
from repro.units import GiB, KiB, MiB


def build(n_servers=4):
    cluster = Cluster(n_servers=n_servers, n_clients=1, seed=0)
    ceph = CephCluster(cluster)
    client = RadosClient(ceph, cluster.clients[0])
    return cluster, ceph, client


def drive(cluster, gen):
    proc = cluster.sim.process(gen)
    cluster.sim.run()
    return proc.result


def test_ec_pool_validation():
    cluster, ceph, client = build()

    def bad_half():
        yield from client.connect()
        yield from client.create_pool("x", ec_k=2)

    with pytest.raises(InvalidArgumentError):
        drive(cluster, bad_half())

    def bad_both():
        yield from client.create_pool("y", size=2, ec_k=2, ec_m=1)

    with pytest.raises(InvalidArgumentError):
        drive(cluster, bad_both())


def test_ec_pool_shards_object_across_osds():
    """With EC enabled, one object's bytes really spread over k+m OSDs —
    the paper's only route to intra-object parallelism on Ceph."""
    cluster, ceph, client = build()
    payload = bytes(range(256)) * (64 * KiB // 256)

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("ec", ec_k=4, ec_m=2)
        yield from client.write_full(pool, "obj", payload)
        return pool

    pool = drive(cluster, flow())
    holders = [o for o in ceph.osds if ("ec", "obj") in o.objects]
    assert len(holders) == 6
    assert pool.write_amplification == pytest.approx(1.5)


def test_ec_pool_roundtrip_and_partial_read():
    cluster, ceph, client = build()
    payload = bytes((i * 7) % 256 for i in range(100 * KiB))

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("ec", ec_k=3, ec_m=2)
        yield from client.write_full(pool, "obj", payload)
        whole = yield from client.read(pool, "obj", 0, len(payload))
        part = yield from client.read(pool, "obj", 12345, 4321)
        return whole, part

    whole, part = drive(cluster, flow())
    assert whole == payload
    assert part == payload[12345 : 12345 + 4321]


def test_ec_pool_rejects_partial_overwrite():
    cluster, ceph, client = build()

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("ec", ec_k=2, ec_m=1)
        yield from client.write_full(pool, "obj", b"x" * 1024)
        yield from client.write(pool, "obj", 100, b"y" * 10)

    with pytest.raises(InvalidArgumentError, match="partial overwrites"):
        drive(cluster, flow())


def test_ec_pool_survives_osd_failures_up_to_m():
    cluster, ceph, client = build()
    payload = bytes((i * 13) % 256 for i in range(64 * KiB))
    state = {}

    def write():
        yield from client.connect()
        pool = yield from client.create_pool("ec", ec_k=2, ec_m=2)
        yield from client.write_full(pool, "obj", payload)
        state["pool"] = pool

    drive(cluster, write())
    acting = state["pool"].acting_set("obj")
    acting[0].fail()
    acting[2].fail()  # one data + one coding chunk lost

    def read():
        return (yield from client.read(pool=state["pool"], obj="obj", offset=0, nbytes=len(payload)))

    assert drive(cluster, read()) == payload


def test_ec_pool_data_loss_beyond_m():
    cluster, ceph, client = build()
    state = {}

    def write():
        yield from client.connect()
        pool = yield from client.create_pool("ec", ec_k=2, ec_m=1)
        yield from client.write_full(pool, "obj", b"z" * 4096)
        state["pool"] = pool

    drive(cluster, write())
    for osd in state["pool"].acting_set("obj")[:2]:
        osd.fail()

    def read():
        yield from client.read(state["pool"], "obj", 0, 4096)

    with pytest.raises(DataLossError):
        drive(cluster, read())


def test_ec_write_uses_more_device_bandwidth():
    """EC 2+1 writes 1.5x the bytes: a single-object write takes ~1.5x
    longer than on an unprotected pool spread over the same width...
    but EC also parallelises over 3 OSDs, so compare amplification via
    link accounting instead."""
    cluster, ceph, client = build(n_servers=2)
    nbytes = 8 * MiB

    def flow():
        yield from client.connect()
        plain = yield from client.create_pool("plain", materialize=False)
        ec = yield from client.create_pool("ec", ec_k=2, ec_m=1, materialize=False)
        yield from client.write(plain, "o", 0, nbytes=nbytes)
        yield from client.write(ec, "o", 0, nbytes=nbytes)
        return plain, ec

    plain, ec = drive(cluster, flow())
    total_stored_plain = sum(
        o.objects[("plain", "o")]["size"] for o in ceph.osds if ("plain", "o") in o.objects
    )
    total_stored_ec = sum(
        o.objects[("ec", "o")]["size"] for o in ceph.osds if ("ec", "o") in o.objects
    )
    assert total_stored_plain == nbytes
    assert total_stored_ec == pytest.approx(1.5 * nbytes, rel=0.01)


def test_ec_single_object_write_faster_than_single_osd():
    """The flip side the paper implies: EC sharding lets one object use
    several OSDs' bandwidth, unlike an unprotected pool."""
    cluster, ceph, client = build(n_servers=2)
    nbytes = 32 * MiB
    times = {}

    def flow():
        yield from client.connect()
        plain = yield from client.create_pool("plain", materialize=False)
        ec = yield from client.create_pool("ec", ec_k=4, ec_m=1, materialize=False)
        t0 = cluster.sim.now
        yield from client.write(plain, "o", 0, nbytes=nbytes)
        times["plain"] = cluster.sim.now - t0
        t0 = cluster.sim.now
        yield from client.write(ec, "o", 0, nbytes=nbytes)
        times["ec"] = cluster.sim.now - t0

    drive(cluster, flow())
    # 4+1 EC: each OSD absorbs nbytes/4 (amp 1.25 total) over 5 OSDs in
    # parallel vs the whole object through one OSD.
    assert times["ec"] < times["plain"] * 0.5
