"""HDF5 models: POSIX format overhead and the DAOS VOL."""

import pytest

from repro.daos import DaosClient, Pool
from repro.dfs import Dfs
from repro.dfuse import DfuseMount, InterceptedMount
from repro.errors import InvalidArgumentError, NotFoundError
from repro.hardware import Cluster
from repro.hdf5 import Hdf5DaosVol, Hdf5PosixFile, Hdf5PosixParams
from repro.units import KiB, MiB


def build_posix(n_servers=4):
    cluster = Cluster(n_servers=n_servers, n_clients=1, seed=0)
    pool = Pool(cluster)
    client = DaosClient(cluster, pool, cluster.clients[0])
    cont = pool.create_container("h5", materialize=False)
    dfs = Dfs(client, cont, chunk_size=MiB)
    mount = DfuseMount(dfs, cluster.clients[0])
    return cluster, mount


def build_vol(n_servers=4):
    cluster = Cluster(n_servers=n_servers, n_clients=1, seed=0)
    pool = Pool(cluster)
    client = DaosClient(cluster, pool, cluster.clients[0])
    return cluster, Hdf5DaosVol(client)


def drive(cluster, gen):
    proc = cluster.sim.process(gen)
    cluster.sim.run()
    return proc.result


# -- POSIX model --------------------------------------------------------------


def test_posix_create_write_read_cycle():
    cluster, mount = build_posix()

    def flow():
        yield from mount.mount()
        h5 = Hdf5PosixFile(mount, "/out.h5")
        yield from h5.create()
        for i in range(4):
            yield from h5.write_op(i, 64 * KiB)
        yield from h5.close()
        h5r = Hdf5PosixFile(mount, "/out.h5")
        yield from h5r.open()
        data = yield from h5r.read_op(2, 64 * KiB)
        yield from h5r.close()
        return len(data)

    assert drive(cluster, flow()) == 64 * KiB


def test_posix_ops_cost_more_than_plain(op_size=256 * KiB):
    """The HDF5 format's metadata I/O makes each op slower than a raw
    write of the same size through the same mount."""
    cluster, mount = build_posix()

    def flow():
        yield from mount.mount()
        h5 = Hdf5PosixFile(mount, "/a.h5")
        yield from h5.create()
        t0 = cluster.sim.now
        yield from h5.write_op(0, op_size)
        t_h5 = cluster.sim.now - t0
        raw = yield from mount.creat("/raw")
        t1 = cluster.sim.now
        yield from mount.write(raw, 0, nbytes=op_size)
        t_raw = cluster.sim.now - t1
        return t_h5, t_raw

    t_h5, t_raw = drive(cluster, flow())
    assert t_h5 > 1.5 * t_raw


def test_posix_metadata_goes_through_fuse_even_with_il():
    """With the IL, data bypasses FUSE but HDF5 metadata still pays the
    kernel crossing — the structural reason HDF5-on-DFUSE+IL lags IOR."""
    cluster, mount = build_posix()
    il = InterceptedMount(mount)

    def flow():
        yield from mount.mount()
        h5 = Hdf5PosixFile(mount, "/il.h5", data_mount=il)
        yield from h5.create()
        t0 = cluster.sim.now
        yield from h5.write_op(0, 64 * KiB)
        t_with_il = cluster.sim.now - t0
        h5b = Hdf5PosixFile(mount, "/noil.h5")
        yield from h5b.create()
        t1 = cluster.sim.now
        yield from h5b.write_op(0, 64 * KiB)
        t_without = cluster.sim.now - t1
        return t_with_il, t_without

    t_with_il, t_without = drive(cluster, flow())
    assert t_with_il < t_without  # IL helps the data part
    params = Hdf5PosixParams()
    min_md_cost = params.md_writes_per_op * mount.params.kernel_crossing
    assert t_with_il > min_md_cost  # but metadata still pays FUSE


def test_posix_unopened_rejected():
    cluster, mount = build_posix()

    def flow():
        yield from mount.mount()
        h5 = Hdf5PosixFile(mount, "/x.h5")
        yield from h5.write_op(0, KiB)

    with pytest.raises(InvalidArgumentError):
        drive(cluster, flow())


def test_posix_md_offsets_stay_in_region():
    cluster, mount = build_posix()
    h5 = Hdf5PosixFile(mount, "/y.h5")
    offsets = [h5._next_md_offset() for _ in range(10_000)]
    assert min(offsets) >= h5.params.superblock_size
    assert max(offsets) < h5.params.md_region_size


# -- DAOS VOL -------------------------------------------------------------------


def test_vol_container_per_file_and_object_per_op():
    cluster, vol = build_vol()

    def flow():
        f = yield from vol.create_file("proc0.h5")
        for i in range(5):
            yield from vol.write_op(f, i, 64 * KiB)
        yield from vol.close_file(f)
        return f

    f = drive(cluster, flow())
    assert len(f.objects) == 5
    assert f.container.pool.n_containers == 1
    assert len(f.container.objects) == 5


def test_vol_read_back():
    cluster, vol = build_vol()

    def flow():
        f = yield from vol.create_file("p.h5")
        yield from vol.write_op(f, 0, 32 * KiB)
        data = yield from vol.read_op(f, 0, 32 * KiB)
        return len(data)

    assert drive(cluster, flow()) == 32 * KiB


def test_vol_missing_dataset():
    cluster, vol = build_vol()

    def flow():
        f = yield from vol.create_file("p.h5")
        yield from vol.read_op(f, 99, KiB)

    with pytest.raises(NotFoundError):
        drive(cluster, flow())


def test_vol_ops_funnel_through_pool_service():
    """Aggregate VOL write throughput is bounded by pool-service capacity
    even when data links have headroom (the paper's HDF5/libdaos ceiling)."""
    cluster = Cluster(n_servers=4, n_clients=2, seed=0)
    pool = Pool(cluster)
    # shrink the pool service so the ceiling shows with few ops
    pool.rsvc_link.capacity = 200.0  # ops/s
    vols = [
        Hdf5DaosVol(DaosClient(cluster, pool, node)) for node in cluster.clients
    ]
    ops_per_proc = 30
    done = {}

    def writer(i):
        f = yield from vols[i].create_file(f"p{i}.h5")
        for k in range(ops_per_proc):
            yield from vols[i].write_op(f, k, 4 * KiB)
        done[i] = cluster.sim.now

    for i in range(2):
        cluster.sim.process(writer(i))
    cluster.sim.run()
    elapsed = max(done.values())
    achieved_creates = 2 * ops_per_proc / elapsed
    # each write op charges ~2 rsvc ops (create md + vol tax)
    assert achieved_creates <= 200.0 * 1.05
