"""Timed DAOS client: latency charges, flow routing, amplification."""

import pytest

from repro.daos import DaosClient, Pool
from repro.hardware import Cluster
from repro.units import GiB, KiB, MiB


def setup(n_servers=4, n_clients=2, seed=0):
    cluster = Cluster(n_servers=n_servers, n_clients=n_clients, seed=seed)
    pool = Pool(cluster)
    client = DaosClient(cluster, pool, cluster.clients[0])
    return cluster, pool, client


def drive(cluster, gen):
    proc = cluster.sim.process(gen)
    cluster.sim.run()
    return proc.result


def test_connect_and_container_create():
    cluster, pool, client = setup()

    def flow():
        yield from client.connect()
        cont = yield from client.create_container("data")
        return cont

    cont = drive(cluster, flow())
    assert pool.get_container("data") is cont
    assert cluster.sim.now > 0


def test_array_write_takes_transfer_time():
    cluster, pool, client = setup()
    nbytes = 64 * MiB

    def flow():
        cont = yield from client.create_container("c", materialize=False)
        arr = yield from client.create_array(cont, oc="SX")
        t0 = cluster.sim.now
        yield from client.array_write(arr, 0, nbytes=nbytes)
        return cluster.sim.now - t0

    elapsed = drive(cluster, flow())
    # One client NIC at 6.25 GiB/s with 0.94 efficiency is the bottleneck
    # (4 servers offer 15.44 GiB/s of SSD write).
    expected = nbytes / (6.25 * GiB * 0.94)
    assert elapsed == pytest.approx(expected, rel=0.05)


def test_array_read_faster_than_write_single_server():
    cluster, pool, client = setup(n_servers=1)
    nbytes = 64 * MiB

    def flow():
        cont = yield from client.create_container("c", materialize=False)
        arr = yield from client.create_array(cont, oc="SX")
        t0 = cluster.sim.now
        yield from client.array_write(arr, 0, nbytes=nbytes)
        t1 = cluster.sim.now
        yield from client.array_read(arr, 0, nbytes)
        t2 = cluster.sim.now
        return (t1 - t0, t2 - t1)

    w, r = drive(cluster, flow())
    # One server: write bound by 3.86 GiB/s SSD, read by 6.25 GiB/s NIC.
    assert w / r == pytest.approx((6.25 * 0.94) / 3.86, rel=0.1)


def test_ec_write_is_two_thirds_of_plain(tmp_path=None):
    """Paper Sec III-D: EC 2+1 writes at ~2/3 of unprotected bandwidth."""
    cluster, pool, client = setup(n_servers=3, n_clients=1)
    nbytes = 48 * MiB

    def flow(oc, label):
        cont = yield from client.create_container(label, materialize=False)
        arr = yield from client.create_array(cont, oc=oc, chunk_size=MiB)
        t0 = cluster.sim.now
        yield from client.array_write(arr, 0, nbytes=nbytes)
        return cluster.sim.now - t0

    t_plain = drive(cluster, flow("S3", "plain"))
    t_ec = drive(cluster, flow("EC_2P1G1", "ec"))
    # S3: data spread on 3 targets; EC_2P1: same 3-target group width but
    # 1.5x bytes written -> ~1.5x the time.
    assert t_ec / t_plain == pytest.approx(1.5, rel=0.15)


def test_rp2_write_is_half_of_plain():
    cluster, pool, client = setup(n_servers=2, n_clients=1)
    nbytes = 32 * MiB

    def flow(oc, label):
        cont = yield from client.create_container(label, materialize=False)
        arr = yield from client.create_array(cont, oc=oc, chunk_size=MiB)
        t0 = cluster.sim.now
        yield from client.array_write(arr, 0, nbytes=nbytes)
        return cluster.sim.now - t0

    t_plain = drive(cluster, flow("S2", "plain"))
    t_rp = drive(cluster, flow("RP_2G1", "rp"))
    assert t_rp / t_plain == pytest.approx(2.0, rel=0.15)


def test_kv_put_get_roundtrip_timed():
    cluster, pool, client = setup()

    def flow():
        cont = yield from client.create_container("kvc")
        kv = yield from client.create_kv(cont, oc="S1")
        yield from client.kv_put(kv, "name", b"value")
        value = yield from client.kv_get(kv, "name")
        return value

    assert drive(cluster, flow()) == b"value"


def test_kv_ops_cost_at_least_rtt():
    cluster, pool, client = setup()
    rtt = pool.params.rpc_rtt

    def flow():
        cont = yield from client.create_container("kvc")
        kv = yield from client.create_kv(cont)
        t0 = cluster.sim.now
        for i in range(10):
            yield from client.kv_put(kv, f"k{i}", b"v")
        return cluster.sim.now - t0

    elapsed = drive(cluster, flow())
    assert elapsed >= 10 * rtt


def test_array_size_query_costs_time():
    cluster, pool, client = setup()

    def flow():
        cont = yield from client.create_container("c")
        arr = yield from client.create_array(cont)
        yield from client.array_write(arr, 0, b"x" * 1000)
        t0 = cluster.sim.now
        size = yield from client.array_size(arr)
        return size, cluster.sim.now - t0

    size, dt = drive(cluster, flow())
    assert size == 1000
    assert dt > 0


def test_failed_op_still_costs_rtt():
    cluster, pool, client = setup()
    from repro.errors import NotFoundError

    def flow():
        cont = yield from client.create_container("c")
        kv = yield from client.create_kv(cont)
        t0 = cluster.sim.now
        try:
            yield from client.kv_get(kv, "missing")
        except NotFoundError:
            return cluster.sim.now - t0

    dt = drive(cluster, flow())
    assert dt >= pool.params.rpc_rtt


def test_two_clients_share_server_bandwidth():
    cluster, pool, _ = setup(n_servers=1, n_clients=2)
    clients = [DaosClient(cluster, pool, n) for n in cluster.clients]
    nbytes = 32 * MiB
    done = {}

    def flow(i):
        cont = yield from clients[i].create_container(f"c{i}", materialize=False)
        arr = yield from clients[i].create_array(cont, oc="SX")
        yield from clients[i].array_write(arr, 0, nbytes=nbytes)
        done[i] = cluster.sim.now

    cluster.sim.process(flow(0))
    cluster.sim.process(flow(1))
    cluster.sim.run()
    # 64 MiB total through one server's 3.86 GiB/s SSD aggregate.
    expected = 2 * nbytes / (3.86 * GiB * 0.94)
    assert max(done.values()) == pytest.approx(expected, rel=0.1)


def test_jitter_differs_between_clients():
    cluster, pool, _ = setup()
    a = DaosClient(cluster, pool, cluster.clients[0], name="a", jitter_sigma=0.1)
    b = DaosClient(cluster, pool, cluster.clients[1], name="b", jitter_sigma=0.1)
    assert a.jitter != b.jitter
    c = DaosClient(cluster, pool, cluster.clients[0], name="c")
    assert c.jitter == 1.0


def test_truncate_timed():
    cluster, pool, client = setup()

    def flow():
        cont = yield from client.create_container("c")
        arr = yield from client.create_array(cont)
        yield from client.array_write(arr, 0, b"x" * (8 * KiB))
        yield from client.array_truncate(arr, 100)
        return arr.size()

    assert drive(cluster, flow()) == 100


def test_open_helpers():
    cluster, pool, client = setup()

    def flow():
        cont = yield from client.create_container("c")
        arr = yield from client.create_array(cont)
        kv = yield from client.create_kv(cont)
        cont2 = yield from client.open_container("c")
        arr2 = yield from client.open_array(cont2, arr.oid)
        kv2 = yield from client.open_kv(cont2, kv.oid)
        return cont is cont2 and arr is arr2 and kv is kv2

    assert drive(cluster, flow())


def test_open_wrong_kind_rejected():
    cluster, pool, client = setup()
    from repro.errors import InvalidArgumentError

    def flow():
        cont = yield from client.create_container("c")
        arr = yield from client.create_array(cont)
        try:
            yield from client.open_kv(cont, arr.oid)
        except InvalidArgumentError:
            return "rejected"

    assert drive(cluster, flow()) == "rejected"


def test_kv_remove_timed():
    cluster, pool, client = setup()

    def flow():
        cont = yield from client.create_container("c")
        kv = yield from client.create_kv(cont, oc="RP_2")
        yield from client.kv_put(kv, "k", b"v")
        yield from client.kv_remove(kv, "k")
        return kv.contains("k")

    assert drive(cluster, flow()) is False


def test_destroy_container_timed():
    cluster, pool, client = setup()

    def flow():
        cont = yield from client.create_container("doomed")
        arr = yield from client.create_array(cont)
        yield from client.array_write(arr, 0, b"x" * 4096)
        t0 = cluster.sim.now
        yield from client.destroy_container("doomed")
        return cluster.sim.now - t0

    dt = drive(cluster, flow())
    assert dt > 0
    from repro.errors import NotFoundError
    with pytest.raises(NotFoundError):
        pool.get_container("doomed")
    assert pool.query()["used_bytes"] == 0
