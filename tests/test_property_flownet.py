"""Property-based tests: flow-network allocation invariants.

Whatever flows arrive, with whatever weights and demand caps, the
max-min allocation must respect physics: no link over capacity, no
capped flow above its cap, all work eventually completes, and the
completion accounting conserves bytes.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.core import Simulator
from repro.sim.flownet import FlowNetwork

SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

link_caps = st.lists(st.floats(1.0, 1000.0), min_size=1, max_size=5)
flow_specs = st.lists(
    st.tuples(
        st.floats(1.0, 500.0),  # size
        st.lists(  # (link index placeholder, weight)
            st.tuples(st.integers(0, 4), st.floats(0.1, 3.0)),
            min_size=1,
            max_size=4,
        ),
        st.one_of(st.none(), st.floats(0.5, 200.0)),  # demand cap
        st.floats(0.0, 2.0),  # start delay
    ),
    min_size=1,
    max_size=10,
)


def build(caps, specs):
    sim = Simulator()
    net = FlowNetwork(sim)
    links = [net.add_link(f"l{i}", c) for i, c in enumerate(caps)]
    started = []

    def driver(size, usages, cap, delay):
        if delay:
            yield sim.timeout(delay)
        flow = net.transfer(
            size,
            [(links[li % len(links)], w) for li, w in usages],
            demand_cap=cap if cap is not None else math.inf,
        )
        started.append(flow)
        yield flow.done

    for size, usages, cap, delay in specs:
        sim.process(driver(size, usages, cap, delay))
    return sim, net, links, started


@settings(**SETTINGS)
@given(caps=link_caps, specs=flow_specs)
def test_all_flows_complete_and_conserve_bytes(caps, specs):
    sim, net, links, started = build(caps, specs)
    sim.run()
    assert len(started) == len(specs)
    for flow, (size, _, _, _) in zip(started, specs):
        assert flow.done.fired
        assert flow.remaining == 0.0
        assert flow.finished_at is not None
        assert flow.finished_at >= flow.started_at


@settings(**SETTINGS)
@given(caps=link_caps, specs=flow_specs)
def test_no_link_ever_over_capacity(caps, specs):
    """Sample the instantaneous allocation after every event: the summed
    weighted rates on each link never exceed its capacity."""
    sim, net, links, _ = build(caps, specs)
    max_overrun = [0.0]

    def monitor():
        while True:
            usage = {link.index: 0.0 for link in links}
            for flow in net.active_flows:
                for link, weight in zip(flow.links, flow.weights):
                    usage[link.index] += flow.rate * weight
            for link in links:
                over = usage[link.index] - link.capacity
                max_overrun[0] = max(max_overrun[0], over / link.capacity)
            nxt = sim.peek()
            if nxt is None:
                return
            yield sim.timeout(max(nxt - sim.now, 1e-6))

    sim.process(monitor())
    sim.run()
    assert max_overrun[0] <= 1e-6


@settings(**SETTINGS)
@given(caps=link_caps, specs=flow_specs)
def test_demand_caps_respected(caps, specs):
    sim, net, links, _ = build(caps, specs)
    violations = [0]

    def monitor():
        while True:
            for flow in net.active_flows:
                if math.isfinite(flow.demand_cap) and flow.rate > flow.demand_cap * (1 + 1e-9):
                    violations[0] += 1
            nxt = sim.peek()
            if nxt is None:
                return
            yield sim.timeout(max(nxt - sim.now, 1e-6))

    sim.process(monitor())
    sim.run()
    assert violations[0] == 0


class _AlwaysSolveNet(FlowNetwork):
    """FlowNetwork with the dirty-set gate held open: every reallocation
    runs a full from-scratch progressive fill.  The incremental network
    must be indistinguishable from this, bit for bit."""

    def _reallocate(self):
        # a sentinel dirty flow forces the affected check to pass
        self._dirty_flows.add(None)
        super()._reallocate()


def _completion_times(caps, specs, net_cls=FlowNetwork, scalar_max=None):
    """Drive one arrival/departure sequence; return each flow's finish time."""
    sim = Simulator()
    net = net_cls(sim)
    if scalar_max is not None:
        net._SCALAR_MAX_FLOWS = scalar_max
        net._SCALAR_MAX_EDGES = scalar_max
    links = [net.add_link(f"l{i}", c) for i, c in enumerate(caps)]
    times = {}

    def driver(tag, size, usages, cap, delay):
        if delay:
            yield sim.timeout(delay)
        flow = net.transfer(
            size,
            [(links[li % len(links)], w) for li, w in usages],
            demand_cap=cap if cap is not None else math.inf,
        )
        yield flow.done
        times[tag] = sim.now

    for tag, (size, usages, cap, delay) in enumerate(specs):
        sim.process(driver(tag, size, usages, cap, delay))
    sim.run()
    return times


@settings(**SETTINGS)
@given(caps=link_caps, specs=flow_specs)
def test_incremental_dirty_set_matches_from_scratch(caps, specs):
    """The dirty-set gate only skips solves whose fixed point cannot
    have moved: forcing a full from-scratch solve at every reallocation
    must reproduce the incremental network's completion times exactly."""
    incremental = _completion_times(caps, specs)
    from_scratch = _completion_times(caps, specs, net_cls=_AlwaysSolveNet)
    assert incremental == from_scratch  # exact: gate is observation-free


@settings(**SETTINGS)
@given(caps=link_caps, specs=flow_specs)
def test_scalar_and_vector_solvers_agree(caps, specs):
    """Forcing the scalar and the vectorised fill on the same random
    sequence gives bitwise-identical completion times (they share one
    IEEE-754 operation order)."""
    scalar = _completion_times(caps, specs, scalar_max=10**9)
    vector = _completion_times(caps, specs, scalar_max=0)
    assert scalar == vector  # exact: solvers are bitwise interchangeable


@settings(**SETTINGS)
@given(
    cap=st.floats(10.0, 1000.0),
    sizes=st.lists(st.floats(1.0, 200.0), min_size=2, max_size=8),
)
def test_single_link_completion_order_by_size(cap, sizes):
    """Equal-weight flows sharing one link finish in size order (max-min
    fairness gives them all equal rates while active).  Near-identical
    sizes complete in the same epsilon-batch, so require separation."""
    from hypothesis import assume

    sorted_sizes = sorted(sizes)
    assume(all(b - a > 1e-3 for a, b in zip(sorted_sizes, sorted_sizes[1:])))
    sim = Simulator()
    net = FlowNetwork(sim)
    link = net.add_link("pipe", cap)
    finished = []

    def driver(tag, size):
        flow = net.transfer(size, [(link, 1.0)], name=str(tag))
        yield flow.done
        finished.append((sim.now, size, tag))

    for tag, size in enumerate(sizes):
        sim.process(driver(tag, size))
    sim.run()
    times = [t for t, _, _ in finished]
    order_sizes = [s for _, s, _ in finished]
    assert times == sorted(times)
    assert order_sizes == sorted(order_sizes)


@settings(**SETTINGS)
@given(
    cap=st.floats(10.0, 100.0),
    n=st.integers(1, 10),
    size=st.floats(5.0, 50.0),
)
def test_equal_flows_aggregate_to_capacity(cap, n, size):
    """n identical flows on one link take exactly n*size/cap seconds."""
    sim = Simulator()
    net = FlowNetwork(sim)
    link = net.add_link("pipe", cap)

    def driver():
        flow = net.transfer(size, [(link, 1.0)])
        yield flow.done

    for _ in range(n):
        sim.process(driver())
    end = sim.run()
    assert end == __import__("pytest").approx(n * size / cap, rel=1e-6)
