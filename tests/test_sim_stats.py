"""Bandwidth accounting per the paper's definition."""

import pytest

from repro.errors import SimulationError
from repro.sim.stats import PhaseRecorder, mean_std
from repro.units import GiB, MiB


def test_single_record_bandwidth():
    rec = PhaseRecorder()
    rec.record("write", start=0.0, end=2.0, nbytes=4 * GiB)
    assert rec.bandwidth("write") == pytest.approx(2 * GiB)


def test_window_is_first_start_to_last_end():
    """The paper divides total bytes by (last op end - first op start),
    across all processes — idle gaps inside the window count."""
    rec = PhaseRecorder()
    rec.record("write", start=0.0, end=1.0, nbytes=1 * GiB)
    rec.record("write", start=9.0, end=10.0, nbytes=1 * GiB)
    stats = rec.get("write")
    assert stats.elapsed == pytest.approx(10.0)
    assert stats.bandwidth == pytest.approx(0.2 * GiB)


def test_overlapping_processes_single_window():
    rec = PhaseRecorder()
    for p in range(4):
        rec.record("read", start=0.1 * p, end=5.0 + 0.1 * p, nbytes=10 * GiB)
    stats = rec.get("read")
    assert stats.bytes == 40 * GiB
    assert stats.first_start == pytest.approx(0.0)
    assert stats.last_end == pytest.approx(5.3)


def test_phases_are_independent():
    rec = PhaseRecorder()
    rec.record("write", 0.0, 1.0, MiB)
    rec.record("read", 100.0, 101.0, 2 * MiB)
    assert rec.bandwidth("write") == pytest.approx(MiB)
    assert rec.bandwidth("read") == pytest.approx(2 * MiB)


def test_iops_accounting():
    rec = PhaseRecorder()
    rec.record("write", 0.0, 2.0, 1000 * 1024, ops=1000)
    assert rec.iops("write") == pytest.approx(500.0)


def test_batch_record_counts_ops():
    rec = PhaseRecorder()
    rec.record("write", 0.0, 1.0, 100 * MiB, ops=100)
    assert rec.get("write").ops == 100


def test_missing_phase_is_zero():
    rec = PhaseRecorder()
    assert rec.bandwidth("nope") == 0.0
    assert rec.iops("nope") == 0.0
    assert rec.get("nope") is None


def test_empty_phase_zero_bandwidth():
    rec = PhaseRecorder()
    stats = rec.phase("write")
    assert stats.elapsed == 0.0
    assert stats.bandwidth == 0.0
    assert stats.iops == 0.0


def test_backwards_record_rejected():
    rec = PhaseRecorder()
    with pytest.raises(SimulationError):
        rec.record("write", start=2.0, end=1.0, nbytes=1)


def test_phases_property_snapshot():
    rec = PhaseRecorder()
    rec.record("write", 0.0, 1.0, 1)
    snap = rec.phases
    assert set(snap) == {"write"}
    snap["bogus"] = None
    assert "bogus" not in rec.phases


def test_mean_std_basic():
    mean, std = mean_std([2.0, 4.0, 6.0])
    assert mean == pytest.approx(4.0)
    assert std == pytest.approx((8.0 / 3.0) ** 0.5)


def test_mean_std_single_and_empty():
    assert mean_std([5.0]) == (5.0, 0.0)
    assert mean_std([]) == (0.0, 0.0)


def test_latency_tracking():
    rec = PhaseRecorder()
    for i, dur in enumerate((0.1, 0.2, 0.3, 0.4)):
        rec.record("write", start=float(i), end=float(i) + dur, nbytes=1)
    stats = rec.get("write")
    assert stats.mean_latency == pytest.approx(0.25)
    assert stats.latency_percentile(0) == pytest.approx(0.1)
    assert stats.latency_percentile(100) == pytest.approx(0.4)
    assert stats.latency_percentile(50) == pytest.approx(0.2, abs=0.11)


def test_latency_percentile_linear_interpolation():
    """Regression pin for the interpolated-percentile definition (the
    old nearest-rank rounding returned 51.0 for p50 of 1..100)."""
    rec = PhaseRecorder()
    for v in range(1, 101):  # latencies 1, 2, ..., 100
        rec.record("write", start=0.0, end=float(v), nbytes=1)
    stats = rec.get("write")
    assert stats.latency_percentile(50) == pytest.approx(50.5)
    assert stats.latency_percentile(99) == pytest.approx(99.01)
    assert stats.latency_percentile(0) == pytest.approx(1.0)
    assert stats.latency_percentile(100) == pytest.approx(100.0)


def test_latency_percentile_interpolates_between_ranks():
    rec = PhaseRecorder()
    for v in (1.0, 2.0, 3.0, 4.0):
        rec.record("write", start=0.0, end=v, nbytes=1)
    stats = rec.get("write")
    assert stats.latency_percentile(50) == pytest.approx(2.5)
    assert stats.latency_percentile(25) == pytest.approx(1.75)


def test_latency_percentile_empty_and_invalid():
    rec = PhaseRecorder()
    stats = rec.phase("write")
    assert stats.latency_percentile(99) == 0.0
    assert stats.mean_latency == 0.0
    rec.record("write", 0.0, 1.0, 1)
    with pytest.raises(SimulationError):
        rec.get("write").latency_percentile(120)
