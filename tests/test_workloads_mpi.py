"""Simulated MPI rank runtime + workload config validation."""

import pytest

from repro.errors import ConfigError
from repro.hardware import Cluster
from repro.units import MiB
from repro.workloads.common import WorkloadConfig
from repro.workloads.mpi import RankWorld


def test_rank_placement_block_pinned():
    cluster = Cluster(n_servers=1, n_clients=3, seed=0)
    world = RankWorld(cluster, n_nodes=3, ppn=4)
    assert world.size == 12
    # block pinning: node 0 hosts ranks 0..3
    assert [r.rank for r in world.ranks_on(cluster.clients[0])] == [0, 1, 2, 3]
    assert [r.rank for r in world.ranks_on(cluster.clients[2])] == [8, 9, 10, 11]
    assert len({r.name for r in world.ranks}) == 12


def test_world_validates_resources():
    cluster = Cluster(n_servers=1, n_clients=2, seed=0)
    with pytest.raises(ConfigError):
        RankWorld(cluster, n_nodes=5, ppn=1)  # more nodes than clients
    with pytest.raises(ConfigError):
        RankWorld(cluster, n_nodes=1, ppn=64)  # more ranks than cores
    with pytest.raises(ConfigError):
        RankWorld(cluster, n_nodes=0, ppn=1)


def test_world_run_executes_every_rank():
    cluster = Cluster(n_servers=1, n_clients=2, seed=0)
    world = RankWorld(cluster, n_nodes=2, ppn=3)
    seen = []

    def main(rank):
        yield cluster.sim.timeout(0.001 * (rank.rank + 1))
        seen.append(rank.rank)

    world.run(main)
    assert sorted(seen) == list(range(6))


def test_world_barrier_synchronises():
    cluster = Cluster(n_servers=1, n_clients=2, seed=0)
    world = RankWorld(cluster, n_nodes=2, ppn=2)
    barrier = world.barrier(world.size)
    releases = []

    def main(rank):
        yield cluster.sim.timeout(0.01 * rank.rank)
        yield barrier.wait()
        releases.append(cluster.sim.now)

    world.run(main)
    assert len(set(releases)) == 1  # everyone released together


def test_run_groups_one_process_per_node():
    cluster = Cluster(n_servers=1, n_clients=3, seed=0)
    world = RankWorld(cluster, n_nodes=3, ppn=8)
    groups = []

    def group_main(node, ranks):
        groups.append((node.index, len(ranks)))
        yield cluster.sim.timeout(0.0)

    world.run_groups(group_main)
    assert sorted(groups) == [(0, 8), (1, 8), (2, 8)]


def test_workload_config_validation():
    with pytest.raises(ConfigError):
        WorkloadConfig(n_client_nodes=1, ppn=1, mode="warp")
    with pytest.raises(ConfigError):
        WorkloadConfig(n_client_nodes=1, ppn=1, ops_per_process=0)
    with pytest.raises(ConfigError):
        WorkloadConfig(n_client_nodes=1, ppn=1, ops_per_process=4, batches=8)


def test_workload_config_batching_math():
    cfg = WorkloadConfig(n_client_nodes=2, ppn=3, ops_per_process=10, batches=3)
    sizes = [cfg.ops_in_batch(b) for b in range(3)]
    assert sum(sizes) == 10
    assert sizes == [3, 3, 4]  # remainder lands in the last batch
    assert cfg.total_processes == 6
    assert cfg.bytes_per_process == 10 * MiB


def test_workload_config_with_():
    cfg = WorkloadConfig(n_client_nodes=2, ppn=2)
    assert cfg.with_(ppn=16).ppn == 16
    assert cfg.ppn == 2  # original untouched
