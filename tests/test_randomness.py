"""Deterministic named RNG streams."""

import numpy as np

from repro.sim.randomness import RngStreams, stable_hash64


def test_same_seed_same_streams():
    a = RngStreams(seed=42).stream("placement").random(8)
    b = RngStreams(seed=42).stream("placement").random(8)
    assert np.array_equal(a, b)


def test_different_names_independent():
    rngs = RngStreams(seed=42)
    a = rngs.stream("alpha").random(8)
    b = rngs.stream("beta").random(8)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("x").random(8)
    b = RngStreams(seed=2).stream("x").random(8)
    assert not np.array_equal(a, b)


def test_stream_memoised():
    rngs = RngStreams(seed=0)
    s1 = rngs.stream("x")
    s1.random(4)  # advance the state
    s2 = rngs.stream("x")
    assert s1 is s2  # same generator object, not a fresh one


def test_child_streams_independent_of_parent():
    parent = RngStreams(seed=7)
    child = parent.child("rep0")
    a = parent.stream("x").random(8)
    b = child.stream("x").random(8)
    assert not np.array_equal(a, b)


def test_child_deterministic():
    a = RngStreams(seed=7).child("rep0").stream("x").random(4)
    b = RngStreams(seed=7).child("rep0").stream("x").random(4)
    assert np.array_equal(a, b)


def test_lognormal_factor_zero_sigma_is_one():
    assert RngStreams(seed=0).lognormal_factor("jitter", 0.0) == 1.0


def test_lognormal_factor_positive_and_reproducible():
    f1 = RngStreams(seed=3).lognormal_factor("jitter", 0.1)
    f2 = RngStreams(seed=3).lognormal_factor("jitter", 0.1)
    assert f1 == f2
    assert f1 > 0.0


def test_stable_hash64_is_stable_across_calls():
    assert stable_hash64("a", 1) == stable_hash64("a", 1)
    assert stable_hash64("a", 1) != stable_hash64("a", 2)
    assert stable_hash64("a", 1) != stable_hash64(("a", 1))


def test_stable_hash64_known_range():
    value = stable_hash64("anything")
    assert 0 <= value < 2**64
