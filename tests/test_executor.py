"""Plan / executor / cache layer: bit-identical results across
executors and cache temperatures, dedup accounting, seed scheme,
version invalidation, and observability merging under parallelism.

Float comparisons here are intentionally exact (``==``): the executor
contract is that modelled numbers are a pure function of the task list,
so serial, parallel, and cached runs must agree to the last bit — any
tolerance would hide a determinism bug.
"""

import json

import pytest

import repro.obs as obs_mod
from repro.errors import ConfigError
from repro.harness.cache import RESULT_SCHEMA, ResultCache, point_key
from repro.harness.executor import (
    ExecutionReport,
    ParallelExecutor,
    PointTask,
    SerialExecutor,
    execute_plan,
    execute_plans,
)
from repro.harness.experiment import (
    MODEL_VERSION,
    PointSpec,
    point_seed,
    run_point,
    spec_token,
)
from repro.harness.figures import FigureResult, Series, build_figure, plan_figure
from repro.harness.plan import dedupe_plans, make_plan

# small, fast specs: 2 servers, 1 client node, a handful of ops
SMALL = PointSpec(
    workload="ior", store="daos", api="DAOS",
    n_servers=2, n_client_nodes=1, ppn=2, ops_per_process=4, batches=1,
)
OTHER = SMALL.with_(ppn=4)
THIRD = SMALL.with_(api="DFS")
DD = PointSpec(
    workload="rawio", store="daos", api="dd",
    n_servers=1, n_client_nodes=1, extra=(("blocks", 2),),
)


def tiny_plan(fig_id="T", specs=(SMALL, OTHER, DD), reps=2):
    """A figure plan over the small specs: one series per spec."""
    specs = list(specs)

    def assemble(results):
        rows = [
            Series(spec_token(s), [0.0], [results[s].write_bw[0]],
                   [results[s].write_bw[1]])
            for s in specs
        ]
        return FigureResult(
            fig_id=fig_id, title=fig_id, xlabel="-",
            panels={"write": rows}, paper_expectation="",
        )

    return make_plan(fig_id, "quick", reps, specs, assemble)


def series_data(fig):
    return [
        (panel, s.label, s.xs, s.means, s.stds)
        for panel, rows in sorted(fig.panels.items())
        for s in rows
    ]


# ------------------------------------------------------------- seed scheme


def test_point_seed_stable_and_spec_sensitive():
    assert point_seed(SMALL, 0) == point_seed(SMALL, 0)
    assert point_seed(SMALL, 0) != point_seed(SMALL, 1)
    assert point_seed(SMALL, 0) != point_seed(OTHER, 0)
    assert point_seed(SMALL, 0) != point_seed(SMALL, 0, base_seed=1)
    assert 0 <= point_seed(SMALL, 0) < 2 ** 63


def test_point_seed_no_positional_collisions():
    # regression for the retired `base_seed * 1000 + rep` scheme, where
    # (rep=1000, base=0) and (rep=0, base=1) collided
    assert point_seed(SMALL, 1000, base_seed=0) != point_seed(SMALL, 0, base_seed=1)
    seen = {
        point_seed(SMALL, rep, base_seed=base)
        for rep in range(50)
        for base in range(4)
    }
    assert len(seen) == 50 * 4


# ------------------------------------------------------------- plan dedup


def test_make_plan_folds_duplicate_specs():
    plan = tiny_plan(specs=[SMALL, OTHER, SMALL, SMALL])
    assert plan.specs == (SMALL, OTHER)
    assert plan.requested == 4
    assert len(plan) == 2


def test_make_plan_rejects_zero_reps():
    with pytest.raises(ConfigError):
        tiny_plan(reps=0)


def test_dedupe_plans_shares_points_across_figures():
    a = tiny_plan("A", specs=[SMALL, OTHER])
    b = tiny_plan("B", specs=[SMALL, DD])
    batch = dedupe_plans([a, b])
    assert batch.planned_points == 4
    assert batch.unique_points == 3  # SMALL shared
    assert batch.deduped_points == 1
    assert [spec for spec, _ in batch.tasks] == [SMALL, OTHER, DD]


def test_dedupe_plans_keeps_differing_reps_apart():
    a = tiny_plan("A", specs=[SMALL], reps=1)
    b = tiny_plan("B", specs=[SMALL], reps=2)
    batch = dedupe_plans([a, b])
    assert batch.unique_points == 2  # same spec, different aggregation


def test_real_figures_share_points():
    # Fig. 3's reference IOR sweep overlaps Fig. 5's server sweep
    batch = dedupe_plans([plan_figure("F3"), plan_figure("F5")])
    assert batch.deduped_points > 0


def test_assemble_missing_results_raises():
    plan = tiny_plan(specs=[SMALL, OTHER])
    with pytest.raises(ConfigError, match="point results missing"):
        plan.assemble({SMALL: run_point(SMALL, reps=2)})


# ------------------------------------------------------------- executors


def test_serial_and_parallel_bit_identical():
    plan = tiny_plan()
    serial_fig, serial_rep = execute_plan(plan, executor=SerialExecutor())
    par_fig, par_rep = execute_plan(plan, executor=ParallelExecutor(jobs=2))
    # exact: determinism contract, see module docstring
    assert series_data(serial_fig) == series_data(par_fig)
    assert serial_rep.jobs == 1 and par_rep.jobs == 2
    assert serial_rep.executed_points == par_rep.executed_points == 3


def test_parallel_matches_run_point_directly():
    results = ParallelExecutor(jobs=2).run_tasks(
        [PointTask(SMALL, reps=2), PointTask(OTHER, reps=2)]
    )
    direct = [run_point(SMALL, reps=2), run_point(OTHER, reps=2)]
    # exact: same seeds, same model, different processes
    assert [r.write_bw for r in results] == [r.write_bw for r in direct]
    assert [r.read_bw for r in results] == [r.read_bw for r in direct]


def test_parallel_preserves_task_order():
    tasks = [PointTask(OTHER, reps=1), PointTask(SMALL, reps=1), PointTask(DD, reps=1)]
    results = ParallelExecutor(jobs=3).run_tasks(tasks)
    assert [r.spec for r in results] == [OTHER, SMALL, DD]


def test_parallel_rejects_bad_jobs():
    with pytest.raises(ConfigError):
        ParallelExecutor(jobs=0)


def test_execute_plans_executes_shared_points_once():
    a = tiny_plan("A", specs=[SMALL, OTHER])
    b = tiny_plan("B", specs=[SMALL, DD])
    figures, report = execute_plans([a, b])
    assert [f.fig_id for f in figures] == ["A", "B"]
    assert report.requested_points == 4
    assert report.unique_points == 3
    assert report.executed_points == 3
    # the shared SMALL point feeds both assemblies with the same numbers
    # exact: one execution, two consumers
    assert figures[0].panels["write"][0].means == figures[1].panels["write"][0].means


def test_build_figure_serial_parallel_identical():
    serial = build_figure("HW")
    parallel = build_figure("HW", executor=ParallelExecutor(jobs=2))
    # exact: determinism contract across executors
    assert series_data(serial) == series_data(parallel)
    assert serial.all_passed and parallel.all_passed


# ------------------------------------------------------------- cache


def test_cache_cold_then_warm(tmp_path):
    plan = tiny_plan()
    cold = ResultCache(tmp_path / "c")
    fig_cold, rep_cold = execute_plan(plan, cache=cold)
    assert cold.stats.hits == 0
    assert cold.stats.misses == 3
    assert cold.stats.stored == 3
    assert len(cold) == 3

    warm = ResultCache(tmp_path / "c")
    fig_warm, rep_warm = execute_plan(plan, cache=warm)
    assert warm.stats.hits == 3
    assert warm.stats.misses == 0
    assert warm.stats.hit_rate == 1.0
    assert rep_warm.executed_points == 0
    # exact: JSON round-trips Python floats losslessly (shortest repr)
    assert series_data(fig_cold) == series_data(fig_warm)


def test_cache_distinguishes_reps_and_base_seed(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(run_point(DD, reps=1))
    assert cache.get(DD, 1) is not None
    assert cache.get(DD, 2) is None  # different aggregation
    assert cache.get(DD, 1, base_seed=7) is None  # different seed family
    assert point_key(DD, 1) != point_key(DD, 1, base_seed=7)


def test_cache_model_version_invalidation(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(run_point(DD, reps=1))
    assert len(cache) == 1

    stale = ResultCache(tmp_path, model_version=MODEL_VERSION + "-next")
    assert stale.get(DD, 1) is None
    assert stale.stats.invalidated == 1
    assert stale.stats.misses == 1
    assert len(stale) == 0  # the stale entry was deleted, not kept


def test_cache_schema_and_corruption_invalidation(tmp_path):
    cache = ResultCache(tmp_path)
    result = run_point(DD, reps=1)
    cache.put(result)
    path = cache.path_for(point_key(DD, 1))

    doc = json.loads(path.read_text())
    assert doc["result_schema"] == RESULT_SCHEMA
    doc["result_schema"] = RESULT_SCHEMA + 1
    path.write_text(json.dumps(doc))
    assert cache.get(DD, 1) is None
    assert cache.stats.invalidated == 1

    cache.put(result)
    path.write_text("{not json")
    assert cache.get(DD, 1) is None
    assert cache.stats.invalidated == 2


def test_cache_corruption_recovery(tmp_path):
    """Truncated, garbage, and half-written entries are discarded on
    read and simply recomputed — a crashed writer can't poison the
    cache."""
    cache = ResultCache(tmp_path)
    result = run_point(DD, reps=1)
    path = cache.path_for(point_key(DD, 1))

    # truncated mid-write (e.g. a worker SIGKILLed during fsync)
    cache.put(result)
    full = path.read_text()
    path.write_text(full[: len(full) // 2])
    assert cache.get(DD, 1) is None
    assert not path.exists()  # discarded, not left to fail every run

    # binary garbage
    cache.put(result)
    path.write_bytes(b"\x00\xffnot-json\x13")
    assert cache.get(DD, 1) is None
    assert not path.exists()

    # parses as JSON, right versions, but the payload is missing:
    # corrupt, not merely version-stale
    cache.put(result)
    doc = json.loads(path.read_text())
    partial = {
        "model_version": doc["model_version"],
        "result_schema": doc["result_schema"],
    }
    path.write_text(json.dumps(partial))
    assert cache.get(DD, 1) is None
    assert not path.exists()

    assert cache.stats.corrupt_discarded == 3
    assert cache.stats.invalidated == 3
    assert cache.stats.misses == 3
    assert "3 corrupt discarded" in cache.stats.summary()

    # recomputing repopulates the slot and it reads back clean
    cache.put(result)
    assert cache.get(DD, 1) is not None


def test_cache_version_mismatch_is_not_counted_corrupt(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(run_point(DD, reps=1))
    stale = ResultCache(tmp_path, model_version=MODEL_VERSION + "-next")
    assert stale.get(DD, 1) is None
    assert stale.stats.invalidated == 1
    assert stale.stats.corrupt_discarded == 0  # stale, not corrupt
    assert "corrupt discarded" not in stale.stats.summary()


def test_cache_roundtrip_is_exact(tmp_path):
    cache = ResultCache(tmp_path)
    result = run_point(SMALL, reps=2)
    cache.put(result)
    loaded = cache.get(SMALL, 2)
    # exact: cache hits must be indistinguishable from re-execution
    assert loaded.spec == result.spec
    assert loaded.write_bw == result.write_bw
    assert loaded.read_bw == result.read_bw
    assert loaded.write_iops == result.write_iops
    assert loaded.read_iops == result.read_iops
    assert loaded.reps == result.reps


# ------------------------------------------------- observability merging


def run_observed(executor):
    obs = obs_mod.Observability()
    with obs_mod.activated(obs):
        fig, _ = execute_plan(tiny_plan(specs=(SMALL, OTHER)), executor=executor)
    obs.finalize()
    return fig, obs


def test_obs_counters_merge_across_workers():
    fig_s, obs_s = run_observed(SerialExecutor())
    fig_p, obs_p = run_observed(ParallelExecutor(jobs=2))
    # exact: modelled numbers unaffected by observation or executor
    assert series_data(fig_s) == series_data(fig_p)
    for name in ("sim.events_executed", "workload.ops", "workload.bytes",
                 "flownet.flows.completed"):
        serial_counter = obs_s.registry.counter(name)
        merged_counter = obs_p.registry.counter(name)
        # exact: integer-valued counters, commutative merge
        assert merged_counter.value == serial_counter.value, name


def test_obs_spans_and_runs_merge_across_workers():
    _, obs_s = run_observed(SerialExecutor())
    _, obs_p = run_observed(ParallelExecutor(jobs=2))
    assert len(obs_p.tracer.spans) == len(obs_s.tracer.spans)
    # 2 points x 2 reps = 4 runs, whichever process ran them
    assert obs_p.run_index + 1 == obs_s.run_index + 1 == 4
    # every absorbed span landed in a distinct, remapped pid lane
    assert {s.pid for s in obs_p.tracer.spans} == {0, 1, 2, 3}
    assert sorted(obs_p.link_stats) == sorted(obs_s.link_stats)
    for name, (busy, denom) in obs_s.link_stats.items():
        p_busy, p_denom = obs_p.link_stats[name]
        assert p_busy == pytest.approx(busy)
        assert p_denom == pytest.approx(denom)


def test_obs_hottest_links_survive_merge():
    _, obs_p = run_observed(ParallelExecutor(jobs=2))
    hottest = obs_p.hottest_links(top=3)
    assert hottest
    assert all(0.0 <= util <= 1.0 + 1e-9 for _, util in hottest)


# ------------------------------------------------- report plumbing


def test_execution_report_as_dict_roundtrip():
    report = ExecutionReport(
        jobs=2, requested_points=10, planned_points=9, unique_points=8,
        executed_points=5, wall_seconds=1.5,
    )
    doc = report.as_dict()
    assert doc["deduped_points"] == 2
    assert doc["cache"] is None
    assert "8 unique points" in report.summary()


def test_bench_record_carries_execution(tmp_path):
    from repro.harness.bench import BENCH_SCHEMA, figure_record

    assert BENCH_SCHEMA == 5
    fig, report = execute_plan(tiny_plan(), cache=ResultCache(tmp_path))
    rec = figure_record(fig, wall_seconds=0.5, events=100, execution=report)
    assert rec["execution"]["executed_points"] == 3
    assert "cache" not in rec["execution"]
    # schema 5: resilience counts ride the execution record, zero when clean
    assert rec["execution"]["retried"] == 0
    assert rec["execution"]["quarantined"] == 0
    assert rec["execution"]["timed_out"] == 0
    assert rec["execution"]["resumed"] == 0
