"""Property-based tests: store semantics against oracle models.

Each simulated store must behave, functionally, exactly like a plain
byte-array / dictionary oracle under arbitrary operation sequences —
regardless of sharding, replication, or erasure coding.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.daos import DaosArray, DaosKV, Pool
from repro.daos.objclass import ObjectClass
from repro.hardware import Cluster
from repro.units import KiB

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

CHUNK = 1 * KiB
SPAN = 8 * CHUNK  # address space exercised


def make_pool():
    return Pool(Cluster(n_servers=3, n_clients=1, seed=0))


def make_array(pool, oc: str) -> DaosArray:
    cont = pool.create_container(f"prop-{oc}-{pool.n_containers}")
    oid = cont.alloc_oid()
    arr = DaosArray(cont, oid, ObjectClass.parse(oc), chunk_size=CHUNK)
    cont.register(oid, arr)
    return arr


write_ops = st.lists(
    st.tuples(
        st.integers(0, SPAN - 1),  # offset
        st.binary(min_size=1, max_size=2 * CHUNK),  # data
    ),
    min_size=1,
    max_size=12,
)


@pytest.mark.parametrize("oc", ["S1", "S2", "SX", "RP_2", "EC_2P1"])
@settings(**SETTINGS)
@given(ops=write_ops)
def test_array_matches_bytearray_oracle(oc, ops):
    """Arbitrary overlapping writes then a full read-back must equal a
    plain bytearray applying the same writes."""
    pool = make_pool()
    arr = make_array(pool, oc)
    oracle = bytearray(SPAN + 2 * CHUNK)
    top = 0
    for offset, data in ops:
        arr.write(offset, data)
        oracle[offset : offset + len(data)] = data
        top = max(top, offset + len(data))
    got, _ = arr.read(0, top)
    assert got == bytes(oracle[:top])
    assert arr.size() == top


@pytest.mark.parametrize("oc", ["RP_2", "EC_2P1"])
@settings(**SETTINGS)
@given(ops=write_ops, data=st.data())
def test_array_oracle_survives_one_failure(oc, ops, data):
    """With single-failure redundancy, killing any one target of the
    object leaves every byte readable and correct."""
    pool = make_pool()
    arr = make_array(pool, oc)
    oracle = bytearray(SPAN + 2 * CHUNK)
    top = 0
    for offset, blob in ops:
        arr.write(offset, blob)
        oracle[offset : offset + len(blob)] = blob
        top = max(top, offset + len(blob))
    targets = arr.all_targets()
    victim = data.draw(st.sampled_from(targets))
    pool.fail_target(victim.global_index)
    got, _ = arr.read(0, top)
    assert got == bytes(oracle[:top])


@settings(**SETTINGS)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "remove"]),
            st.text(alphabet="abcdef", min_size=1, max_size=8),
            st.binary(max_size=64),
        ),
        max_size=25,
    )
)
def test_kv_matches_dict_oracle(ops):
    pool = make_pool()
    cont = pool.create_container("kv-prop")
    kv = DaosKV(cont, cont.alloc_oid(), ObjectClass.parse("S4"))
    oracle = {}
    for op, key, value in ops:
        if op == "put":
            kv.put(key, value)
            oracle[key] = value
        else:
            if key in oracle:
                kv.remove(key)
                del oracle[key]
    assert kv.keys() == set(oracle)
    for key, value in oracle.items():
        assert kv.get(key)[0] == value


@settings(**SETTINGS)
@given(ops=write_ops)
def test_lustre_matches_bytearray_oracle(ops):
    from repro.lustre import LustreClient, LustreFilesystem

    cluster = Cluster(n_servers=2, n_clients=1, seed=0)
    fs = LustreFilesystem(cluster)
    client = LustreClient(fs, cluster.clients[0])
    oracle = bytearray(SPAN + 2 * CHUNK)
    top = 0
    result = {}

    def flow():
        nonlocal top
        fh = yield from client.create("/prop", stripe_count=4, stripe_size=CHUNK)
        for offset, data in ops:
            yield from client.write(fh, offset, data)
            oracle[offset : offset + len(data)] = data
            top = max(top, offset + len(data))
        result["data"] = yield from client.read(fh, 0, top)

    cluster.sim.process(flow())
    cluster.sim.run()
    assert result["data"] == bytes(oracle[:top])


@settings(**SETTINGS)
@given(ops=write_ops)
def test_rados_matches_bytearray_oracle(ops):
    from repro.ceph import CephCluster, RadosClient

    cluster = Cluster(n_servers=2, n_clients=1, seed=0)
    ceph = CephCluster(cluster)
    client = RadosClient(ceph, cluster.clients[0])
    oracle = bytearray(SPAN + 2 * CHUNK)
    top = 0
    result = {}

    def flow():
        nonlocal top
        yield from client.connect()
        pool = yield from client.create_pool("prop")
        for offset, data in ops:
            yield from client.write(pool, "obj", offset, data)
            oracle[offset : offset + len(data)] = data
            top = max(top, offset + len(data))
        result["data"] = yield from client.read(pool, "obj", 0, top)

    cluster.sim.process(flow())
    cluster.sim.run()
    assert result["data"] == bytes(oracle[:top])
