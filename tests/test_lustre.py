"""Lustre model: namespace, striping, MDS bottleneck."""

import pytest

from repro.errors import ConfigError, ExistsError, InvalidArgumentError, NotFoundError
from repro.hardware import Cluster
from repro.lustre import LustreClient, LustreFilesystem, LustreParams
from repro.units import GiB, KiB, MiB


def build(n_servers=4, n_clients=1, params=None):
    cluster = Cluster(n_servers=n_servers, n_clients=n_clients, seed=0)
    fs = LustreFilesystem(cluster, params=params)
    client = LustreClient(fs, cluster.clients[0])
    return cluster, fs, client


def drive(cluster, gen):
    proc = cluster.sim.process(gen)
    cluster.sim.run()
    return proc.result


def test_deployment_osts():
    _, fs, _ = build(n_servers=4)
    assert fs.n_osts == 64
    assert len({o.name for o in fs.osts}) == 64


def test_create_write_read_roundtrip():
    cluster, fs, client = build()
    payload = bytes(range(256)) * 32

    def flow():
        fh = yield from client.create("/f", stripe_count=4, stripe_size=4 * KiB)
        yield from client.write(fh, 0, payload)
        data = yield from client.read(fh, 0, len(payload))
        return data

    assert drive(cluster, flow()) == payload


def test_striping_spreads_bytes_over_osts():
    cluster, fs, client = build()

    def flow():
        fh = yield from client.create("/s", stripe_count=8, stripe_size=1 * KiB)
        yield from client.write(fh, 0, b"z" * (16 * KiB))
        return fh

    fh = drive(cluster, flow())
    used = [o for o in fh.osts if o.objects]
    assert len(used) == 8  # every stripe OST got data


def test_stripe_map_round_robin():
    cluster, fs, client = build()

    def flow():
        fh = yield from client.create("/rr", stripe_count=2, stripe_size=1 * KiB)
        return client._stripe_map(fh, 0, 4 * KiB)

    pieces = drive(cluster, flow())
    stripes = [s for _, s, _, _, _ in pieces]
    assert stripes == [0, 1, 0, 1]


def test_paper_stripe_settings_accepted():
    """fdb-hammer on Lustre used 8 OSTs x 8 MiB stripes (Sec III-E)."""
    cluster, fs, client = build(n_servers=16)

    def flow():
        fh = yield from client.create("/fdb.data", stripe_count=8, stripe_size=8 * MiB)
        return fh.inode.stripe_count, fh.inode.stripe_size

    assert drive(cluster, flow()) == (8, 8 * MiB)


def test_invalid_stripe_count_rejected():
    cluster, fs, client = build(n_servers=1)

    def flow():
        yield from client.create("/bad", stripe_count=100)

    with pytest.raises(ConfigError):
        drive(cluster, flow())


def test_namespace_semantics():
    cluster, fs, client = build()

    def flow():
        yield from client.mkdir("/d")
        fh = yield from client.create("/d/f")
        yield from client.write(fh, 0, b"x" * 100)
        yield from client.close(fh)
        size, mode = yield from client.stat("/d/f")
        names = yield from client.readdir("/d")
        yield from client.unlink("/d/f")
        exists_after = True
        try:
            yield from client.open("/d/f")
        except NotFoundError:
            exists_after = False
        return size, names, exists_after

    size, names, exists_after = drive(cluster, flow())
    assert size == 100
    assert names == ["f"]
    assert exists_after is False


def test_duplicate_create_rejected():
    cluster, fs, client = build()

    def flow():
        yield from client.create("/f")
        yield from client.create("/f")

    with pytest.raises(ExistsError):
        drive(cluster, flow())


def test_open_directory_rejected():
    cluster, fs, client = build()

    def flow():
        yield from client.mkdir("/d")
        yield from client.open("/d")

    with pytest.raises(InvalidArgumentError):
        drive(cluster, flow())


def test_unlink_nonempty_dir_rejected():
    cluster, fs, client = build()

    def flow():
        yield from client.mkdir("/d")
        yield from client.create("/d/f")
        yield from client.unlink("/d")

    with pytest.raises(InvalidArgumentError):
        drive(cluster, flow())


def test_holes_read_as_zeros():
    cluster, fs, client = build()

    def flow():
        fh = yield from client.create("/h", stripe_count=2, stripe_size=1 * KiB)
        yield from client.write(fh, 4 * KiB, b"tail")
        return (yield from client.read(fh, 0, 4 * KiB + 4))

    data = drive(cluster, flow())
    assert data[: 4 * KiB] == b"\0" * 4 * KiB
    assert data[4 * KiB :] == b"tail"


def test_closed_handle_rejected():
    cluster, fs, client = build()

    def flow():
        fh = yield from client.create("/c")
        yield from client.close(fh)
        yield from client.write(fh, 0, b"x")

    with pytest.raises(InvalidArgumentError):
        drive(cluster, flow())


def test_large_write_near_roofline():
    """A wide-striped bulk write approaches the SSD write roofline
    (one server, so the client NIC is not the bottleneck)."""
    cluster, fs, client = build(n_servers=1)
    nbytes = 64 * MiB

    def flow():
        fh = yield from client.create("/big", stripe_count=16, stripe_size=MiB)
        t0 = cluster.sim.now
        yield from client.write(fh, 0, nbytes=nbytes, materialize=False)
        return nbytes / (cluster.sim.now - t0)

    bw = drive(cluster, flow())
    roofline = 3.86 * GiB
    assert bw > 0.85 * roofline
    assert bw <= roofline


def test_mds_bottleneck_on_open_storms():
    """Many clients doing open-per-op saturate the single MDS: aggregate
    open rate is capped by mds_capacity regardless of OST headroom."""
    params = LustreParams(mds_capacity=2_000.0)
    cluster, fs, _ = build(n_servers=4, n_clients=4, params=params)
    clients = [LustreClient(fs, n) for n in cluster.clients]
    opens_per_client = 100
    done = {}

    def opener(i):
        fh = yield from clients[i].create(f"/file{i}")
        yield from clients[i].write(fh, 0, b"x" * 100)
        yield from clients[i].close(fh)
        for _ in range(opens_per_client):
            fh = yield from clients[i].open(f"/file{i}")
            yield from clients[i].close(fh)
        done[i] = cluster.sim.now

    for i in range(4):
        cluster.sim.process(opener(i))
    cluster.sim.run()
    elapsed = max(done.values())
    total_mds_ops = 4 * opens_per_client * 2.0  # 2 requests per open
    assert total_mds_ops / elapsed <= params.mds_capacity * 1.05
    assert total_mds_ops / elapsed >= params.mds_capacity * 0.5


def test_lustre_requires_oss_nodes():
    cluster = Cluster(n_servers=1, n_clients=0)
    with pytest.raises(ConfigError):
        LustreFilesystem(cluster, server_nodes=[])
