"""RetryPolicy threading through the Lustre and Ceph read paths.

PR 5 wired retries into DAOS only; these tests pin the shared
:func:`repro.faults.retry.run_with_retry` runner on the other two
backends: seeded-backoff determinism, zero happy-path RNG draws with
the default policy, per-op timeouts, replicated-read failover, and the
non-retryable ``DegradedError`` / ``DataLossError`` semantics.
"""

import math

import pytest

from repro.ceph import CephCluster, RadosClient
from repro.errors import DataLossError, DegradedError, UnavailableError
from repro.faults.retry import RetryPolicy, run_with_retry
from repro.hardware import Cluster
from repro.lustre import LustreClient, LustreFilesystem
from repro.units import KiB


def lustre_build(policy=None, seed=0):
    cluster = Cluster(n_servers=4, n_clients=1, seed=seed)
    fs = LustreFilesystem(cluster)
    client = LustreClient(fs, cluster.clients[0], retry_policy=policy)
    return cluster, fs, client


def ceph_build(policy=None, seed=0):
    cluster = Cluster(n_servers=4, n_clients=1, seed=seed)
    ceph = CephCluster(cluster)
    client = RadosClient(ceph, cluster.clients[0], retry_policy=policy)
    return cluster, ceph, client


def drive(cluster, gen):
    proc = cluster.sim.process(gen)
    cluster.sim.run()
    return proc.result


# -- happy path: the retry layer is invisible ---------------------------------


def test_lustre_happy_path_never_touches_retry_stream():
    cluster, fs, client = lustre_build()

    def flow():
        fh = yield from client.create("/f", stripe_count=4, stripe_size=4 * KiB)
        yield from client.write(fh, 0, b"x" * (16 * KiB))
        return (yield from client.read(fh, 0, 16 * KiB))

    assert drive(cluster, flow()) == b"x" * (16 * KiB)
    assert client.retries == 0
    # the .retry backoff stream is created lazily on first retry only:
    # fault-free runs make zero extra RNG draws
    assert client._retry_rng is None


def test_ceph_happy_path_never_touches_retry_stream():
    cluster, ceph, client = ceph_build()

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("p", size=2)
        yield from client.write_full(pool, "o", b"payload")
        return (yield from client.read(pool, "o", 0, 7))

    assert drive(cluster, flow()) == b"payload"
    assert client.retries == 0
    assert client._retry_rng is None


def test_lustre_default_policy_timing_matches_no_policy():
    # an explicit default policy and no policy produce the same timeline
    times = []
    for policy in (None, RetryPolicy()):
        cluster, fs, client = lustre_build(policy=policy)

        def flow(client=client):
            fh = yield from client.create("/t", stripe_count=2)
            yield from client.write(fh, 0, b"y" * (8 * KiB))
            yield from client.read(fh, 0, 8 * KiB)

        drive(cluster, flow())
        times.append(cluster.sim.now)
    assert times[0] == times[1]


# -- seeded backoff determinism ----------------------------------------------


def test_lustre_backoff_stream_seeded_deterministic():
    policy = RetryPolicy(jitter=0.2)
    _, _, a = lustre_build(seed=7)
    _, _, b = lustre_build(seed=7)
    assert [policy.delay(n, a._backoff_rng()) for n in (1, 2, 3)] == [
        policy.delay(n, b._backoff_rng()) for n in (1, 2, 3)
    ]


def test_ceph_backoff_stream_seeded_deterministic():
    policy = RetryPolicy(jitter=0.2)
    _, _, a = ceph_build(seed=7)
    _, _, b = ceph_build(seed=7)
    assert [policy.delay(n, a._backoff_rng()) for n in (1, 2, 3)] == [
        policy.delay(n, b._backoff_rng()) for n in (1, 2, 3)
    ]


def test_backoff_streams_are_per_backend_and_per_client():
    # the lustre and ceph streams of the same node name are independent
    cluster = Cluster(n_servers=2, n_clients=1, seed=3)
    node = cluster.clients[0]
    fs = LustreFilesystem(cluster)
    ceph = CephCluster(cluster)
    lc = LustreClient(fs, node)
    cc = RadosClient(ceph, node)
    assert lc._backoff_rng().normal() != cc._backoff_rng().normal()


# -- per-op timeout ------------------------------------------------------------


@pytest.mark.parametrize("backend", ["lustre", "ceph"])
def test_op_timeout_interrupts_and_retries(backend):
    policy = RetryPolicy(
        max_attempts=2, op_timeout=0.05, backoff_base=0.01, jitter=0.0
    )
    if backend == "lustre":
        cluster, _, client = lustre_build(policy=policy)
        ledger_name = "lustre.lat.read"
    else:
        cluster, _, client = ceph_build(policy=policy)
        ledger_name = "ceph.lat.read"
    sim = cluster.sim

    def hang(opx):
        yield sim.signal(name="never-fires")

    def scenario():
        yield from run_with_retry(client, hang, "hang", ledger_name)

    sim.process(scenario())
    with pytest.raises(UnavailableError, match="timed out"):
        sim.run()
    assert client.retries == 1
    # attempt 1 (0.05) + backoff (0.01) + attempt 2 (0.05)
    assert math.isclose(sim.now, 0.11)


def test_lustre_read_op_timeout_end_to_end():
    # a timeout shorter than any read attempt exhausts the budget
    policy = RetryPolicy(
        max_attempts=3, op_timeout=1e-7, backoff_base=0.01, jitter=0.0
    )
    cluster, fs, client = lustre_build(policy=policy)

    def flow():
        fh = yield from client.create("/z", stripe_count=2)
        yield from client.write(fh, 0, b"z" * (4 * KiB))
        yield from client.read(fh, 0, 4 * KiB)

    cluster.sim.process(flow())
    with pytest.raises(UnavailableError, match="timed out"):
        cluster.sim.run()
    assert client.retries == 2  # max_attempts - 1


# -- non-retryable faults stay non-retryable ----------------------------------


def test_lustre_degraded_ost_read_not_retried():
    policy = RetryPolicy(max_attempts=5, backoff_base=0.01, jitter=0.0)
    cluster, fs, client = lustre_build(policy=policy)

    def flow():
        fh = yield from client.create("/d", stripe_count=2, stripe_size=1 * KiB)
        yield from client.write(fh, 0, b"d" * (4 * KiB))
        fh.osts[0].fail()
        yield from client.read(fh, 0, 4 * KiB)

    cluster.sim.process(flow())
    with pytest.raises(DegradedError):
        cluster.sim.run()
    assert client.retries == 0


def test_ceph_ec_data_loss_not_retried():
    policy = RetryPolicy(max_attempts=5, backoff_base=0.01, jitter=0.0)
    cluster, ceph, client = ceph_build(policy=policy)

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("ec", ec_k=2, ec_m=1)
        yield from client.write_full(pool, "o", b"e" * (4 * KiB))
        for osd in pool.acting_set("o")[:2]:  # k+m = 3; losing 2 of 3 > m
            osd.fail()
        yield from client.read(pool, "o", 0, 4 * KiB)

    cluster.sim.process(flow())
    with pytest.raises(DataLossError):
        cluster.sim.run()
    assert client.retries == 0


# -- ceph replicated-read failover --------------------------------------------


def test_ceph_read_fails_over_to_surviving_replica():
    cluster, ceph, client = ceph_build()

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("r", size=2)
        yield from client.write_full(pool, "o", b"replica-data")
        pool.pgmap.primary("o").fail()
        return (yield from client.read(pool, "o", 0, 12))

    assert drive(cluster, flow()) == b"replica-data"
    assert client.retries == 0  # failover is immediate, not a retry


def test_ceph_read_retry_bridges_full_outage():
    policy = RetryPolicy(max_attempts=8, backoff_base=0.05, jitter=0.0)
    cluster, ceph, client = ceph_build(policy=policy)
    sim = cluster.sim

    def scenario():
        yield from client.connect()
        pool = yield from client.create_pool("r", size=2)
        yield from client.write_full(pool, "o", b"x" * 64)
        acting = pool.acting_set("o")
        for osd in acting:
            osd.fail()

        def revive():
            yield sim.timeout(0.12)
            for osd in acting:
                osd.restore()

        sim.process(revive())
        # retried with seeded backoff until the acting set comes back;
        # Osd.fail() drops the object bytes, so the read returns zeros
        return (yield from client.read(pool, "o", 0, 64))

    assert drive(cluster, scenario()) == b"\0" * 64
    assert client.retries >= 1


def test_ceph_outage_bridge_timeline_deterministic():
    def run(seed):
        policy = RetryPolicy(max_attempts=8, backoff_base=0.05, jitter=0.2)
        cluster, ceph, client = ceph_build(policy=policy, seed=seed)
        sim = cluster.sim

        def scenario():
            yield from client.connect()
            pool = yield from client.create_pool("r", size=2)
            yield from client.write_full(pool, "o", b"x" * 64)
            acting = pool.acting_set("o")
            for osd in acting:
                osd.fail()

            def revive():
                yield sim.timeout(0.12)
                for osd in acting:
                    osd.restore()

            sim.process(revive())
            yield from client.read(pool, "o", 0, 64)

        drive(cluster, scenario())
        return sim.now, client.retries

    assert run(5) == run(5)
    # jittered backoff actually engaged (a different seed shifts timing)
    assert run(5)[0] != run(6)[0]


# -- retried reads are visible in observability -------------------------------


def test_ceph_retried_counter_increments():
    import repro.obs as obs_mod

    obs = obs_mod.Observability()
    with obs_mod.activated(obs):
        policy = RetryPolicy(max_attempts=8, backoff_base=0.05, jitter=0.0)
        cluster = Cluster(n_servers=4, n_clients=1, seed=0, obs=obs)
        ceph = CephCluster(cluster)
        client = RadosClient(ceph, cluster.clients[0], retry_policy=policy)
        sim = cluster.sim

        def scenario():
            yield from client.connect()
            pool = yield from client.create_pool("r", size=2)
            yield from client.write_full(pool, "o", b"x" * 64)
            acting = pool.acting_set("o")
            for osd in acting:
                osd.fail()

            def revive():
                yield sim.timeout(0.12)
                for osd in acting:
                    osd.restore()

            sim.process(revive())
            yield from client.read(pool, "o", 0, 64)

        drive(cluster, scenario())
    assert client.retries >= 1
    assert obs.registry.counter("ceph.ops.retried").value == client.retries
