"""Resilient campaign execution: checkpoint/resume, per-point timeouts,
worker-crash containment, and quarantine.

The invariant under test everywhere: resilience machinery must never
change modelled numbers.  A batch that loses workers to SIGKILL, gets
interrupted and resumed, or routes points through retries must produce
figures byte-identical to an undisturbed serial run — the only
difference is host-side accounting (retried/timed_out/quarantined/
resumed counts and the quarantine file).
"""

import json
import math
import signal

import pytest

import repro.harness.executor as executor_mod
from repro.errors import ConfigError
from repro.harness.cache import ResultCache, point_key
from repro.harness.executor import (
    SerialExecutor,
    execute_plan,
    execute_plans,
)
from repro.harness.experiment import PointSpec, spec_token
from repro.harness.figures import FigureResult, Series
from repro.harness.plan import make_plan
from repro.harness.resilience import (
    CHAOS_ENV,
    BatchJournal,
    ChaosPlan,
    ExecutionInterrupted,
    Quarantine,
    ResilienceConfig,
    ResilientParallelExecutor,
    chaos_plan,
    hole_result,
)

SMALL = PointSpec(
    workload="ior", store="daos", api="DAOS",
    n_servers=2, n_client_nodes=1, ppn=2, ops_per_process=4, batches=1,
)
OTHER = SMALL.with_(ppn=4)
DD = PointSpec(
    workload="rawio", store="daos", api="dd",
    n_servers=1, n_client_nodes=1, extra=(("blocks", 2),),
)
SPECS = (SMALL, OTHER, DD)


def tiny_plan(fig_id="R", specs=SPECS, reps=2):
    specs = list(specs)

    def assemble(results):
        rows = [
            Series(spec_token(s), [0.0], [results[s].write_bw[0]],
                   [results[s].write_bw[1]])
            for s in specs
        ]
        return FigureResult(
            fig_id=fig_id, title=fig_id, xlabel="-",
            panels={"write": rows}, paper_expectation="",
        )

    return make_plan(fig_id, "quick", reps, specs, assemble)


def series_data(fig):
    return [
        (panel, s.label, s.xs, s.means, s.stds)
        for panel, rows in sorted(fig.panels.items())
        for s in rows
    ]


@pytest.fixture
def serial_figure():
    fig, _ = execute_plan(tiny_plan())
    return fig


# ------------------------------------------------------- chaos grammar


def test_chaos_plan_parses_directives():
    plan = chaos_plan("kill-worker:ppn=4:2; sleep:dd:1.5; interrupt-after:3")
    assert plan == ChaosPlan(
        kill_substr="ppn=4", kill_attempts=2,
        sleep_substr="dd", sleep_seconds=1.5, interrupt_after=3,
    )
    assert plan.active
    assert chaos_plan("kill-worker:ppn=4").kill_attempts == 1
    assert not chaos_plan("").active


def test_chaos_plan_rejects_unknown_directive():
    with pytest.raises(ConfigError, match="unknown directive"):
        chaos_plan("explode:everything")


# ------------------------------------------- identity with no faults


def test_resilient_matches_serial_bit_identical(serial_figure):
    fig, report = execute_plan(
        tiny_plan(), executor=ResilientParallelExecutor(jobs=2)
    )
    assert series_data(fig) == series_data(serial_figure)
    assert report.retried == 0
    assert report.timed_out == 0
    assert report.quarantined == 0


# ------------------------------------------------- worker-crash containment


def test_sigkilled_worker_is_retried_and_identical(serial_figure, monkeypatch):
    # one spec's worker SIGKILLs itself on the first attempt; the batch
    # must complete with retried > 0 and byte-identical series
    monkeypatch.setenv(CHAOS_ENV, "kill-worker:ppn=4")
    ex = ResilientParallelExecutor(jobs=2)
    fig, report = execute_plan(tiny_plan(), executor=ex)
    assert series_data(fig) == series_data(serial_figure)
    assert report.retried >= 1
    assert ex.last_stats.crashes >= 1
    assert report.quarantined == 0


def test_repeated_crasher_is_quarantined_not_fatal(
    serial_figure, tmp_path, monkeypatch
):
    # a task that kills its worker on every attempt exhausts the budget
    # and lands in quarantine; the rest of the batch still completes
    monkeypatch.setenv(CHAOS_ENV, "kill-worker:ppn=4:99")
    cache = ResultCache(tmp_path / "c")
    qpath = tmp_path / "q.json"
    ex = ResilientParallelExecutor(jobs=2, max_retries=1)
    with pytest.raises(ConfigError, match="quarantined after repeated failures"):
        execute_plans(
            [tiny_plan()], executor=ex, cache=cache,
            resilience=ResilienceConfig(max_retries=1, quarantine_path=qpath),
        )
    # the two innocent points were checkpointed despite the failure
    assert cache.get(SMALL, 2) is not None
    assert cache.get(DD, 2) is not None
    doc = json.loads(qpath.read_text())
    (entry,) = doc["entries"].values()
    assert entry["spec_token"] == spec_token(OTHER)
    assert entry["reason"] == "worker-crash"
    assert entry["attempts"] == 2  # 1 + max_retries

    # --allow-partial assembles around the hole; the quarantined point
    # is skipped (not re-attempted) and the note names it
    monkeypatch.delenv(CHAOS_ENV)
    figs, report = execute_plans(
        [tiny_plan()], executor=SerialExecutor(),
        cache=ResultCache(tmp_path / "c"),
        resilience=ResilienceConfig(
            allow_partial=True, quarantine_path=qpath
        ),
    )
    assert report.quarantined == 1
    assert "PARTIAL: 1 of 3" in figs[0].notes
    assert spec_token(OTHER) in figs[0].notes
    clean = {s.label: s for s in figs[0].panels["write"]}
    assert math.isnan(clean[spec_token(OTHER)].means[0])
    # the surviving points carry the exact serial numbers
    good = {s.label: s for s in serial_figure.panels["write"]}
    for tok in (spec_token(SMALL), spec_token(DD)):
        assert clean[tok].means == good[tok].means


# ------------------------------------------------- timeout -> quarantine


def test_point_timeout_retries_then_quarantines(tmp_path, monkeypatch):
    # one spec sleeps (host time) past the per-point deadline on every
    # attempt: each try is timed out on a fresh pool, then quarantined
    monkeypatch.setenv(CHAOS_ENV, "sleep:ppn=4:30")
    cache = ResultCache(tmp_path / "c")
    qpath = tmp_path / "q.json"
    ex = ResilientParallelExecutor(jobs=2, point_timeout=0.5, max_retries=1)
    with pytest.raises(ConfigError, match="re-run with --allow-partial"):
        execute_plans(
            [tiny_plan()], executor=ex, cache=cache,
            resilience=ResilienceConfig(
                point_timeout=0.5, max_retries=1, quarantine_path=qpath
            ),
        )
    assert ex.last_stats.timed_out >= 2
    q = Quarantine(qpath)
    key = point_key(OTHER, 2)
    assert q.has(key)
    assert q.entries[key]["reason"] == "timeout"
    assert q.entries[key]["spec_token"] == spec_token(OTHER)
    assert q.entries[key]["attempts"] == 2
    # the other points completed and were checkpointed
    assert cache.get(SMALL, 2) is not None
    assert cache.get(DD, 2) is not None


# ------------------------------------------------- interrupt -> resume


def test_interrupt_then_resume_serves_finished_from_cache(
    serial_figure, tmp_path, monkeypatch
):
    monkeypatch.setenv(CHAOS_ENV, "interrupt-after:1")
    cache = ResultCache(tmp_path / "c")
    with pytest.raises(ExecutionInterrupted) as exc_info:
        execute_plans(
            [tiny_plan()], executor=ResilientParallelExecutor(jobs=1),
            cache=cache, resilience=ResilienceConfig(),
        )
    finished = exc_info.value.completed
    assert 1 <= finished < 3
    assert len(cache) == finished  # everything finished was checkpointed
    journal_files = list((cache.root / "journal").iterdir())
    assert {p.suffix for p in journal_files} == {".journal", ".events"}

    # resume: every point finished before the interrupt is a cache hit
    monkeypatch.delenv(CHAOS_ENV)
    warm = ResultCache(tmp_path / "c")
    figs, report = execute_plans(
        [tiny_plan()], executor=ResilientParallelExecutor(jobs=1),
        cache=warm, resilience=ResilienceConfig(resume=True),
    )
    assert warm.stats.hits == finished
    assert warm.stats.misses == 3 - finished
    assert report.resumed == finished
    assert series_data(figs[0]) == series_data(serial_figure)


def test_batch_journal_round_trip(tmp_path):
    keys = [point_key(s, 2) for s in SPECS]
    journal = BatchJournal(tmp_path, BatchJournal.key_for(keys, 0))
    journal.write_manifest(
        {k: spec_token(s) for k, s in zip(keys, SPECS)}, base_seed=0, jobs=2
    )
    journal.mark_done(keys[0])
    journal.mark_done(keys[0])  # idempotent
    journal.mark_done(keys[2])
    fresh = BatchJournal(tmp_path, journal.batch_key)
    assert fresh.done_keys() == {keys[0], keys[2]}
    # a different batch (extra point / other seed) journals separately
    assert BatchJournal.key_for(keys[:2], 0) != journal.batch_key
    assert BatchJournal.key_for(keys, 7) != journal.batch_key


# ---------------------------------- mid-batch persistence (regression)


def test_mid_batch_failure_keeps_completed_results(tmp_path, monkeypatch):
    """A batch that dies halfway keeps everything it finished: cache.put
    happens per completion, not at the end (the all-or-nothing bug)."""
    real = executor_mod.run_point
    calls = []

    def flaky(spec, reps=1, base_seed=0):
        calls.append(spec)
        if len(calls) == 2:
            raise RuntimeError("simulated mid-batch death")
        return real(spec, reps=reps, base_seed=base_seed)

    monkeypatch.setattr(executor_mod, "run_point", flaky)
    cache = ResultCache(tmp_path / "c")
    with pytest.raises(RuntimeError, match="mid-batch death"):
        execute_plan(tiny_plan(), cache=cache)
    assert cache.stats.stored == 1
    assert len(cache) == 1  # the completed first half persisted

    # the rerun serves the survivor from cache and computes the rest
    monkeypatch.setattr(executor_mod, "run_point", real)
    warm = ResultCache(tmp_path / "c")
    fig, report = execute_plan(tiny_plan(), cache=warm)
    assert warm.stats.hits == 1
    assert warm.stats.misses == 2
    plain, _ = execute_plan(tiny_plan())
    assert series_data(fig) == series_data(plain)


# ------------------------------------------------------------- pieces


def test_hole_result_is_all_nan():
    hole = hole_result(SMALL, 2)
    assert hole.spec == SMALL and hole.reps == 2
    for pair in (hole.write_bw, hole.read_bw, hole.write_iops, hole.read_iops):
        assert math.isnan(pair[0]) and math.isnan(pair[1])


def test_quarantine_survives_corrupt_file(tmp_path):
    qpath = tmp_path / "q.json"
    qpath.write_text("{broken")
    q = Quarantine(qpath)
    assert len(q) == 0
    q.add(
        key="k", token=spec_token(SMALL), reps=2, base_seed=0,
        attempts=3, reason="error", error="Boom: x",
    )
    again = Quarantine(qpath)
    assert again.has("k")
    assert again.entries["k"]["spec_token"] == spec_token(SMALL)


def test_sigint_handler_restored(serial_figure):
    before = signal.getsignal(signal.SIGINT)
    execute_plan(tiny_plan(), executor=ResilientParallelExecutor(jobs=2))
    assert signal.getsignal(signal.SIGINT) is before
