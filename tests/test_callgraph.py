"""Call-graph builder: tricky constructs must resolve (or degrade to a
conservative dynamic mark) without crashing."""

import ast
import textwrap

import pytest

from repro.analysis.callgraph import (
    ProjectGraph,
    module_name_for,
    package_role,
)


def build(files):
    graph = ProjectGraph()
    for rel, src in files.items():
        graph.add_module_once(rel, ast.parse(textwrap.dedent(src)))
    graph.resolve()
    return graph


def calls_of(graph, qualname):
    return graph.functions[qualname].calls


def targets_of(graph, qualname):
    out = set()
    for site in calls_of(graph, qualname):
        out.update(site.targets)
    return out


# ----------------------------------------------------------- basics


def test_module_name_strips_src_and_init():
    assert module_name_for("src/repro/sim/core.py") == "repro.sim.core"
    assert module_name_for("sim/core.py") == "sim.core"
    assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"


def test_package_role_classification():
    assert package_role("src/repro/sim/core.py") == "model"
    assert package_role("daos/client.py") == "model"
    assert package_role("src/repro/obs/metrics.py") == "obs"
    assert package_role("harness/cli.py") == "other"


def test_plain_call_and_method_resolution():
    graph = build({"sim/a.py": """
        class Engine:
            def step(self):
                return self.tick()

            def tick(self):
                return 1

        def run(engine: Engine):
            engine.step()
    """})
    assert "sim.a.Engine.tick" in targets_of(graph, "sim.a.Engine.step")
    assert "sim.a.Engine.step" in targets_of(graph, "sim.a.run")


def test_constructor_call_targets_init():
    graph = build({"sim/a.py": """
        class Engine:
            def __init__(self):
                self.t = 0

        def make():
            return Engine()
    """})
    assert "sim.a.Engine.__init__" in targets_of(graph, "sim.a.make")


def test_base_class_method_resolved_through_inheritance():
    graph = build({"sim/a.py": """
        class Base:
            def step(self):
                return 0

        class Derived(Base):
            def run(self):
                self.step()
    """})
    assert "sim.a.Base.step" in targets_of(graph, "sim.a.Derived.run")


# ------------------------------------------------- tricky constructs


def test_nested_function_qualname_and_resolution():
    graph = build({"sim/a.py": """
        def outer():
            def inner():
                return 1
            return inner()
    """})
    assert "sim.a.outer.<locals>.inner" in graph.functions
    assert "sim.a.outer.<locals>.inner" in targets_of(graph, "sim.a.outer")


def test_functools_wraps_decorated_function_still_resolves():
    graph = build({"sim/a.py": """
        import functools

        def timed(fn):
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                return fn(*args, **kwargs)
            return wrapper

        @timed
        def step():
            return 1

        def run():
            return step()
    """})
    info = graph.functions["sim.a.step"]
    assert info.decorators == ["timed"]
    assert "sim.a.step" in targets_of(graph, "sim.a.run")


def test_property_getter_and_setter_registered():
    graph = build({"sim/a.py": """
        class Engine:
            @property
            def now(self):
                return self._now

            @now.setter
            def now(self, value):
                self._now = value
    """})
    cls = graph.classes["sim.a.Engine"]
    assert "now" in cls.methods
    assert "now.setter" in cls.methods
    assert cls.methods["now"].is_property
    assert cls.methods["now.setter"].is_setter


def test_lambda_probe_callback_gets_synthetic_name():
    graph = build({"sim/a.py": """
        def attach(sim):
            sim.time_probe = lambda t: t
    """})
    registered = [info.qualname for info in graph.callback_functions()]
    assert any("<lambda#" in q for q in registered)


def test_named_probe_and_transfer_callbacks_registered():
    graph = build({"sim/a.py": """
        def on_tick(t):
            return t

        def log_transfer(flow):
            return flow

        def attach(sim, net):
            sim.time_probe = on_tick
            net.on_transfer.append(log_transfer)
    """})
    registered = {info.qualname for info in graph.callback_functions()}
    assert "sim.a.on_tick" in registered
    assert "sim.a.log_transfer" in registered


def test_dynamic_getattr_call_marked_not_crashed():
    graph = build({"sim/a.py": """
        def dispatch(obj, name):
            return getattr(obj, name)()
    """})
    sites = calls_of(graph, "sim.a.dispatch")
    assert any(site.dynamic for site in sites)


def test_class_with_dunder_getattr_is_conservative():
    graph = build({"sim/a.py": """
        class Proxy:
            def __getattr__(self, name):
                return lambda: None

        def poke(p: Proxy):
            p.anything()
    """})
    assert graph.classes["sim.a.Proxy"].has_dynamic_getattr
    sites = calls_of(graph, "sim.a.poke")
    assert any(site.dynamic for site in sites)


def test_attr_type_inferred_from_ctor_assignment():
    graph = build({"sim/a.py": """
        class Engine:
            def tick(self):
                return 1

        class Holder:
            def __init__(self):
                self.engine = Engine()

            def go(self):
                self.engine.tick()
    """})
    assert "sim.a.Engine.tick" in targets_of(graph, "sim.a.Holder.go")


def test_unresolvable_and_stdlib_calls_do_not_crash():
    graph = build({"sim/a.py": """
        import os

        def f(x):
            os.path.join("a", "b")
            x.whatever()
            unknown_function()
    """})
    # nothing resolved, nothing raised
    assert "sim.a.f" in graph.functions


def test_add_module_once_is_idempotent():
    src = "def f():\n    return 1\n"
    graph = ProjectGraph()
    graph.add_module_once("sim/a.py", ast.parse(src))
    graph.add_module_once("sim/a.py", ast.parse(src))
    graph.resolve()
    assert list(graph.functions) == ["sim.a.f"]


def test_resolve_is_idempotent():
    graph = build({"sim/a.py": """
        def g():
            return 1

        def f():
            return g()
    """})
    before = {q: [list(s.targets) for s in i.calls]
              for q, i in graph.functions.items()}
    graph.resolve()
    after = {q: [list(s.targets) for s in i.calls]
             for q, i in graph.functions.items()}
    assert before == after
