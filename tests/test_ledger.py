"""Op ledger: decomposition exactness (components sum to the recorded
latency, under faults, retries, EC reconstruction, and rebuild
interference), deterministic tail exemplars, serial/parallel merge
identity, dormancy, exports, and the no-data report blocks."""

import io
import json
import math

import pytest

from repro.ceph import CephCluster, RadosClient
from repro.errors import ConfigError, UnavailableError
from repro.faults import RetryPolicy
from repro.hardware import Cluster
from repro.harness.executor import ParallelExecutor, PointTask, SerialExecutor
from repro.harness.experiment import PointSpec, run_point
from repro.obs import (
    Observability,
    OpLedger,
    activated,
    export_ledger_ndjson,
    ledger_trace_events,
    parse_quantile,
    render_hot_paths,
    render_tail_exemplars,
    render_waterfall,
)
from repro.obs.ledger import ZERO_BUCKET
from repro.obs.metrics import MetricsRegistry
from repro.sim.randomness import RngStreams
from repro.units import KiB, MiB
from repro.workloads.common import DaosEnv

REL = 1e-9  # the exactness invariant's tolerance


class FakeSim:
    """Just a clock — OpContext only ever reads ``sim.now``."""

    def __init__(self):
        self.now = 0.0


def fd_spec(**kwargs):
    """One point of the FD degraded-mode family (docs/FAULTS.md)."""
    defaults = dict(
        workload="ior", store="daos", api="DAOS", n_servers=2,
        n_client_nodes=2, ppn=4, ops_per_process=144, op_size=MiB,
        mode="exact", faults="target@read+0.02:5,rebuild",
        object_class="RP_2GX",
    )
    defaults.update(kwargs)
    return PointSpec(**defaults)


def exemplar_records(ledger):
    return [rec for _, _, _, _, rec in ledger.iter_exemplars()]


# -- parse_quantile ------------------------------------------------------------


def test_parse_quantile_forms():
    assert parse_quantile("p99") == 0.99
    assert parse_quantile("p999") == 0.999
    assert parse_quantile("P50") == 0.5
    assert parse_quantile("0.95") == 0.95


@pytest.mark.parametrize("bad", ["", "p", "px9", "1.5", "-0.1", "99%"])
def test_parse_quantile_rejects(bad):
    with pytest.raises(ConfigError):
        parse_quantile(bad)


# -- unit-level context behaviour ---------------------------------------------


def test_components_telescope_exactly():
    sim = FakeSim()
    ledger = OpLedger()
    with ledger.op("op", sim) as opx:
        sim.now = 0.125
        opx.note("serial")
        sim.now = 0.5
        opx.note("transfer")
        sim.now = 0.625  # residual -> "other"
    (rec,) = exemplar_records(ledger)
    assert rec["components"] == {"serial": 0.125, "transfer": 0.375, "other": 0.125}
    assert math.isclose(sum(rec["components"].values()), rec["latency"], rel_tol=REL)
    assert rec["latency"] == 0.625


def test_zero_latency_op_lands_in_zero_bucket():
    sim = FakeSim()
    ledger = OpLedger()
    with ledger.op("op", sim):
        pass
    (rec,) = exemplar_records(ledger)
    assert rec["components"] == {}
    assert ledger.quantile_bucket("op", 0.99) == ZERO_BUCKET
    assert ledger.bucket_bounds("op", ZERO_BUCKET) == (0.0, 0.0)


def test_exception_aborts_without_recording():
    sim = FakeSim()
    ledger = OpLedger()
    with pytest.raises(RuntimeError):
        with ledger.op("op", sim):
            sim.now = 1.0
            raise RuntimeError("op failed")
    assert ledger.names() == []
    assert ledger.aborted == 1
    assert ledger.ops_recorded == 0


def test_discard_drops_the_context():
    sim = FakeSim()
    ledger = OpLedger()
    with ledger.op("op", sim) as opx:
        opx.discard()
    assert ledger.names() == []
    assert ledger.aborted == 0


def test_exemplar_keeps_min_run_seq_per_bucket():
    sim = FakeSim()
    ledger = OpLedger()
    ledger.set_run(3)
    for _ in range(2):  # same bucket twice: first (run, seq) must stick
        sim.now = 0.0
        with ledger.op("op", sim):
            sim.now = 0.25
    (rec,) = exemplar_records(ledger)
    assert (rec["run"], rec["seq"]) == (3, 0)


def test_rebuild_window_overlap():
    ledger = OpLedger()
    ledger.rebuild_begin(1.0)
    ledger.rebuild_end(3.0)
    assert ledger.rebuild_overlap(0.0, 10.0) == 2.0
    assert ledger.rebuild_overlap(2.0, 2.5) == 0.5
    assert ledger.rebuild_overlap(4.0, 5.0) == 0.0
    ledger.rebuild_begin(8.0)  # still open
    assert ledger.rebuild_overlap(7.0, 9.0) == 1.0


# -- exactness across a faulted FD-family run ---------------------------------


@pytest.fixture(scope="module")
def fd_ledger():
    obs = Observability(ledger=OpLedger())
    run_point(fd_spec(), reps=2, base_seed=0, obs=obs)
    obs.finalize()
    return obs.ledger


def test_fd_components_sum_to_latency_for_every_exemplar(fd_ledger):
    records = exemplar_records(fd_ledger)
    assert len(records) > 10
    for rec in records:
        assert math.isclose(
            sum(rec["components"].values()), rec["latency"], rel_tol=REL
        ), rec


def test_fd_exemplar_latency_inside_its_bucket(fd_ledger):
    for name, bucket, lo, hi, rec in fd_ledger.iter_exemplars():
        if bucket == ZERO_BUCKET:
            assert rec["latency"] == 0.0
        else:
            assert lo <= rec["latency"] < hi


def test_fd_run_attributes_transfer_and_rebuild(fd_ledger):
    assert "daos.lat.arr-read" in fd_ledger.names()
    assert "daos.lat.arr-write" in fd_ledger.names()
    comps = [c for rec in exemplar_records(fd_ledger) for c in rec["components"]]
    assert any(c.startswith("xfer:") for c in comps)
    # a single-target failure with rebuild traffic mid-read: some tail
    # op must have overlapped the rebuild window
    assert any(c == "rebuild" for c in comps)


def test_fd_explain_resolves_p99(fd_ledger):
    doc = fd_ledger.explain("daos.lat.arr-read", 0.99)
    assert doc is not None
    assert doc["count"] == fd_ledger.count("daos.lat.arr-read")
    assert doc["exemplar"]["components"]


# -- Ceph EC reconstruction ----------------------------------------------------


def test_ceph_ec_degraded_read_exemplar_has_reconstruct_component():
    obs = Observability(ledger=OpLedger())
    cluster = Cluster(n_servers=4, n_clients=1, seed=0, obs=obs)
    ceph = CephCluster(cluster)
    client = RadosClient(ceph, cluster.clients[0])
    payload = bytes((i * 13) % 256 for i in range(64 * KiB))
    state = {}

    def write():
        yield from client.connect()
        pool = yield from client.create_pool("ec", ec_k=2, ec_m=2)
        yield from client.write_full(pool, "obj", payload)
        state["pool"] = pool

    proc = cluster.sim.process(write())
    cluster.sim.run()
    state["pool"].acting_set("obj")[0].fail()  # lose a data chunk

    def read():
        return (yield from client.read(state["pool"], "obj", 0, len(payload)))

    proc = cluster.sim.process(read())
    cluster.sim.run()
    assert proc.result == payload
    records = obs.ledger.exemplars["ceph.lat.read"].values()
    degraded = [r for r in records if "reconstruct" in r["flags"]]
    assert degraded, "degraded EC read left no flagged exemplar"
    for rec in degraded:
        assert any(c.startswith("reconstruct:") for c in rec["components"]), rec
        assert math.isclose(
            sum(rec["components"].values()), rec["latency"], rel_tol=REL
        )


# -- DAOS retry: backoff equals the seeded draws -------------------------------


def test_daos_backoff_component_equals_seeded_draws():
    policy = RetryPolicy(
        max_attempts=3, op_timeout=0.05, backoff_base=0.01,
        backoff_factor=2.0, jitter=0.1,
    )
    obs = Observability(ledger=OpLedger())
    cluster = Cluster(n_servers=2, n_clients=1, seed=7, obs=obs)
    env = DaosEnv(cluster, retry_policy=policy)
    client = env.client(cluster.clients[0])
    sim = cluster.sim
    state = {"attempts": 0}

    def flaky(opx):
        state["attempts"] += 1
        if state["attempts"] < 3:
            yield sim.signal(name=f"never-{state['attempts']}")  # times out
        else:
            yield sim.timeout(0.001)
            opx.note("serial")
        return "ok"

    def scenario():
        value = yield from client._with_retry(flaky, "flaky")
        state["value"] = value

    sim.process(scenario())
    sim.run()
    assert state["value"] == "ok"
    assert state["attempts"] == 3

    # replay the client's seeded backoff stream: the component must
    # equal the sum of the draws exactly
    replay = RngStreams(seed=cluster.rng.seed).stream(f"{client.name}.retry")
    expected = policy.delay(1, replay) + policy.delay(2, replay)
    (rec,) = obs.ledger.exemplars["daos.lat.flaky"].values()
    assert math.isclose(rec["components"]["backoff"], expected, rel_tol=REL)
    # two attempt windows lost to the op-timeout race
    assert math.isclose(rec["components"]["timeout"], 2 * 0.05, rel_tol=REL)
    assert "retried" in rec["flags"]
    assert math.isclose(
        sum(rec["components"].values()), rec["latency"], rel_tol=REL
    )


# -- serial vs parallel merge identity ----------------------------------------


def small_spec(**kwargs):
    defaults = dict(
        workload="ior", store="daos", api="DAOS",
        n_servers=2, n_client_nodes=2, ppn=2, ops_per_process=8,
    )
    defaults.update(kwargs)
    return PointSpec(**defaults)


def test_serial_and_parallel_ledgers_merge_identically():
    tasks = [
        PointTask(spec=small_spec(), reps=2, base_seed=1),
        PointTask(spec=small_spec(object_class="RP_2GX"), reps=1, base_seed=1),
    ]
    serial_obs = Observability(ledger=OpLedger())
    with activated(serial_obs):
        serial_results = SerialExecutor().run_tasks(tasks)
    serial_obs.finalize()
    parallel_obs = Observability(ledger=OpLedger())
    with activated(parallel_obs):
        parallel_results = ParallelExecutor(jobs=2).run_tasks(tasks)
    parallel_obs.finalize()
    for a, b in zip(serial_results, parallel_results):
        assert a.write_bw == b.write_bw and a.read_bw == b.read_bw
    assert serial_obs.ledger.dump_state() == parallel_obs.ledger.dump_state()


def test_merge_rejects_substeps_mismatch():
    a, b = OpLedger(substeps=64), OpLedger(substeps=32)
    with pytest.raises(ConfigError, match="substeps"):
        a.merge_state(b.dump_state())


# -- dormancy: identical modelled results with the ledger on or off ------------


def test_results_identical_with_ledger_on_off():
    plain = run_point(small_spec(), reps=2, base_seed=3)
    ledgered = run_point(
        small_spec(), reps=2, base_seed=3,
        obs=Observability(ledger=OpLedger()),
    )
    assert plain.write_bw == ledgered.write_bw
    assert plain.read_bw == ledgered.read_bw
    assert plain.write_iops == ledgered.write_iops
    assert plain.read_iops == ledgered.read_iops


# -- exports -------------------------------------------------------------------


def test_ndjson_export_is_deterministic(fd_ledger):
    a, b = io.StringIO(), io.StringIO()
    n1 = export_ledger_ndjson(a, {"FD": fd_ledger})
    n2 = export_ledger_ndjson(b, {"FD": fd_ledger})
    assert n1 == n2 > 0
    assert a.getvalue() == b.getvalue()
    rows = [json.loads(line) for line in a.getvalue().splitlines()]
    assert all(row["figure"] == "FD" for row in rows)
    keys = [(row["op"], row["bucket"]) for row in rows]
    assert keys == sorted(keys)


def test_ledger_trace_events_shape(fd_ledger):
    events = ledger_trace_events(fd_ledger, pid_offset=10)
    slices = [e for e in events if e["ph"] == "X"]
    assert slices and all(e["cat"] == "ledger" for e in slices)
    assert all(e["pid"] >= 10 for e in slices)
    assert all("components" in e["args"] for e in slices)


# -- report blocks (incl. the no-data guarantees) ------------------------------


def test_waterfall_renders_components(fd_ledger):
    text = render_waterfall(fd_ledger, "daos.lat.arr-read", 0.99)
    assert "explain daos.lat.arr-read p99" in text
    assert "= recorded latency (components sum exactly)" in text
    tail = render_tail_exemplars(fd_ledger)
    assert "tail exemplars" in tail
    assert "daos.lat.arr-write" in tail


def test_waterfall_no_data_blocks():
    assert "(no ledger data" in render_waterfall(None, "x", 0.99)
    assert "(no ledger data" in render_waterfall(OpLedger(), "x", 0.99)
    assert "(no ledger data collected)" in render_tail_exemplars(None)
    assert "(no ledger data collected)" in render_tail_exemplars(OpLedger())


def test_profile_and_metrics_no_data_blocks():
    assert "(no engine activity profiled)" in render_hot_paths(None)
    assert "(no metrics recorded)" in MetricsRegistry().render_table()
