"""Ceph model: PG placement, librados semantics, efficiency ceilings."""

import pytest

from repro.ceph import CephCluster, CephParams, PgMap, RadosClient
from repro.errors import ConfigError, InvalidArgumentError, NotFoundError
from repro.hardware import Cluster
from repro.units import GiB, KiB, MiB


def build(n_servers=4, n_clients=1, params=None):
    cluster = Cluster(n_servers=n_servers, n_clients=n_clients, seed=0)
    ceph = CephCluster(cluster, params=params)
    client = RadosClient(ceph, cluster.clients[0])
    return cluster, ceph, client


def drive(cluster, gen):
    proc = cluster.sim.process(gen)
    cluster.sim.run()
    return proc.result


def test_deployment_osds():
    _, ceph, _ = build(n_servers=4)
    assert ceph.n_osds == 64


def test_connect_required():
    cluster, ceph, client = build()

    def flow():
        yield from client.create_pool("p")

    with pytest.raises(InvalidArgumentError):
        drive(cluster, flow())


def test_write_read_roundtrip():
    cluster, ceph, client = build()
    payload = bytes(range(256)) * 8

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("data", pg_num=64)
        yield from client.write_full(pool, "obj-1", payload)
        return (yield from client.read(pool, "obj-1", 0, len(payload)))

    assert drive(cluster, flow()) == payload


def test_partial_read_and_stat():
    cluster, ceph, client = build()

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("p")
        yield from client.write(pool, "o", 0, b"0123456789")
        part = yield from client.read(pool, "o", 3, 4)
        size = yield from client.stat(pool, "o")
        return part, size

    part, size = drive(cluster, flow())
    assert part == b"3456"
    assert size == 10


def test_read_missing_object():
    cluster, ceph, client = build()

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("p")
        yield from client.read(pool, "ghost", 0, 10)

    with pytest.raises(NotFoundError):
        drive(cluster, flow())


def test_remove_object():
    cluster, ceph, client = build()

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("p")
        yield from client.write_full(pool, "o", b"x")
        yield from client.remove(pool, "o")
        try:
            yield from client.stat(pool, "o")
        except NotFoundError:
            return "gone"

    assert drive(cluster, flow()) == "gone"


def test_max_object_size_enforced():
    """Paper: recommended maximum object size of 132 MiB."""
    cluster, ceph, client = build()

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("p", materialize=False)
        yield from client.write(pool, "big", 132 * MiB - 1, nbytes=2)

    with pytest.raises(InvalidArgumentError, match="maximum"):
        drive(cluster, flow())


def test_object_lives_on_single_primary():
    """No sharding without EC/replication: one object -> one OSD."""
    cluster, ceph, client = build()

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("p")
        yield from client.write_full(pool, "solo", b"x" * (4 * KiB))
        return pool

    pool = drive(cluster, flow())
    holders = [o for o in ceph.osds if (("p", "solo") in o.objects)]
    assert len(holders) == 1
    assert holders[0] is pool.pgmap.primary("solo")


def test_replicated_pool_fans_out():
    cluster, ceph, client = build()

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("r", size=3)
        yield from client.write_full(pool, "o", b"abc")
        return pool

    pool = drive(cluster, flow())
    holders = [o for o in ceph.osds if (("r", "o") in o.objects)]
    assert len(holders) == 3
    assert all(bytes(h.objects[("r", "o")]["data"]) == b"abc" for h in holders)


def test_omap_roundtrip():
    cluster, ceph, client = build()

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("idx")
        yield from client.omap_set(pool, "index", {"k1": b"v1", "k2": b"v2"})
        v1 = yield from client.omap_get(pool, "index", "k1")
        return v1

    assert drive(cluster, flow()) == b"v1"


def test_omap_missing_key():
    cluster, ceph, client = build()

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("idx")
        yield from client.omap_set(pool, "index", {"a": b"1"})
        yield from client.omap_get(pool, "index", "zzz")

    with pytest.raises(NotFoundError):
        drive(cluster, flow())


def test_pgmap_validation():
    _, ceph, _ = build()
    with pytest.raises(ConfigError):
        PgMap("x", 0, ceph.osds)
    with pytest.raises(ConfigError):
        PgMap("x", 16, ceph.osds, size=1000)


def test_pgmap_acting_sets_distinct():
    _, ceph, _ = build()
    pg = PgMap("p", 128, ceph.osds, size=3)
    for obj in ("a", "b", "c", "d"):
        acting = pg.acting_set(obj)
        assert len({o.index for o in acting}) == 3


def test_many_pgs_balance_primaries():
    """Paper: 1024 PGs gave balanced placement across 256 OSDs."""
    cluster = Cluster(n_servers=16, n_clients=0, seed=0)
    ceph = CephCluster(cluster)
    pg = PgMap("balanced", 1024, ceph.osds)
    counts = pg.pg_distribution()
    assert min(counts) >= 1
    assert max(counts) <= 8  # mean is 4; permutation keeps the tail tight


def test_few_pgs_underuse_osds():
    """A too-small PG count leaves OSDs idle (why the paper tuned PGs)."""
    cluster = Cluster(n_servers=16, n_clients=0, seed=0)
    ceph = CephCluster(cluster)
    pg = PgMap("small", 32, ceph.osds)
    counts = pg.pg_distribution()
    assert counts.count(0) >= 256 - 32


def test_write_efficiency_ceiling():
    """A single-object write is capped at write_efficiency x device bw."""
    cluster, ceph, client = build(n_servers=1)
    nbytes = 16 * MiB

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("p", materialize=False)
        t0 = cluster.sim.now
        yield from client.write(pool, "obj", 0, nbytes=nbytes)
        return nbytes / (cluster.sim.now - t0)

    bw = drive(cluster, flow())
    device_bw = 3.86 * GiB / 16
    assert bw <= ceph.params.write_efficiency * device_bw * 1.01
    assert bw >= ceph.params.write_efficiency * device_bw * 0.8


def test_read_faster_than_write_per_object():
    cluster, ceph, client = build(n_servers=1)
    nbytes = 16 * MiB

    def flow():
        yield from client.connect()
        pool = yield from client.create_pool("p", materialize=False)
        yield from client.write(pool, "obj", 0, nbytes=nbytes)
        t0 = cluster.sim.now
        yield from client.read(pool, "obj", 0, nbytes)
        return nbytes / (cluster.sim.now - t0)

    read_bw = drive(cluster, flow())
    device_read = 7.0 * GiB / 16
    assert read_bw == pytest.approx(ceph.params.read_efficiency * device_read, rel=0.1)


def test_duplicate_pool_rejected():
    cluster, ceph, client = build()
    from repro.errors import ExistsError

    def flow():
        yield from client.connect()
        yield from client.create_pool("p")
        yield from client.create_pool("p")

    with pytest.raises(ExistsError):
        drive(cluster, flow())
