#!/usr/bin/env python3
"""Compare two BENCH_<git-sha>.json files; fail on regressions.

Stdlib-only on purpose — CI and developers run it against artifacts
without installing the package::

    python tools/bench_compare.py BENCH_old.json BENCH_new.json

Exit status:

- ``0`` — no regressions (identical files always pass);
- ``1`` — at least one regression: a figure's wall-clock grew more than
  ``--wall-tolerance`` (default 10%), any modelled series mean drifted
  (these are deterministic — *any* drift is a semantic model change),
  a deterministic engine counter changed (``events``, ``recomputes``,
  ``peak_queue_depth`` — schema 3; a kernel optimisation that changes
  them intentionally regenerates the baseline, like a model change), a
  derived rate (``events_per_second``, ``recomputes_per_second``)
  slowed beyond the wall tolerance, a candidate figure ran below the
  absolute ``--fail-under-events-per-sec`` floor, a shape check flipped
  to failing, or a figure/series disappeared;
- ``2`` — the files could not be read or have incompatible schemas
  (including a missing baseline — the error suggests how to seed one).

``peak_queue_depth`` changed meaning in schema 4 (live events only;
cancelled tombstones no longer counted), so across a schema 3<->4 pair
it is reported as info rather than compared exactly.  Pass ``-`` as the
baseline to skip comparison entirely and only enforce the events/sec
floor (the CI perf-smoke mode).

Wall-clock noise cuts both ways: speedups and small slowdowns are
reported as info, only slowdowns beyond the tolerance fail.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List

#: largest |new - old| / max(|old|, eps) treated as "no drift" for
#: modelled numbers (they are deterministic; this only absorbs float
#: formatting round-trips)
DRIFT_EPS = 1e-9


def load(path: str) -> Dict:
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "schema" not in doc or "figures" not in doc:
        raise ValueError(f"{path}: not a BENCH document")
    # schema 2 added executor/cache accounting, schema 3 the simprof
    # engine fields, schema 4 live-only queue peaks + recomputes_per_event,
    # schema 5 resilience counts in the execution record; every field is
    # compared only when both documents carry it (and peak_queue_depth
    # only within one semantic regime), so any mix of 1..5 is comparable
    if doc["schema"] not in (1, 2, 3, 4, 5):
        raise ValueError(f"{path}: unsupported BENCH schema {doc['schema']!r}")
    return doc


def _rel_drift(old: float, new: float) -> float:
    return abs(new - old) / max(abs(old), DRIFT_EPS)


def render_drift_table(drifts: List[tuple], top: int = 10) -> List[str]:
    """The worst mismatches as aligned table lines, largest relative
    delta first: (figure, counter, baseline, current, delta)."""
    if not drifts:
        return []
    rows = [("figure", "counter", "baseline", "current", "delta")]
    ranked = sorted(drifts, key=lambda d: (-d[4], d[0], d[1]))[:top]
    for fig_id, key, old_v, new_v, rel in ranked:
        rows.append((fig_id, key, f"{old_v:g}", f"{new_v:g}", f"{rel:+.3%}"))
    widths = [max(len(r[i]) for r in rows) for i in range(5)]
    lines = [f"top {min(top, len(drifts))} of {len(drifts)} drifted value(s):"]
    for i, row in enumerate(rows):
        lines.append(
            "  " + "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
        if i == 0:
            lines.append("  " + "-" * (sum(widths) + 8))
    return lines


def render_throughput_table(old: Dict, new: Dict) -> List[str]:
    """Per-figure events/sec, baseline vs candidate, with the delta —
    the kernel-performance summary a reviewer actually wants to see."""
    rows = [("figure", "base ev/s", "new ev/s", "delta")]
    for fig_id, n in sorted(new["figures"].items()):
        if "events_per_second" not in n:
            continue
        o = old["figures"].get(fig_id, {})
        nv = n["events_per_second"]
        ov = o.get("events_per_second")
        if ov:
            delta = f"{(nv - ov) / ov:+.1%}"
            rows.append((fig_id, f"{ov:.0f}", f"{nv:.0f}", delta))
        else:
            rows.append((fig_id, "-", f"{nv:.0f}", "new"))
    if len(rows) == 1:
        return []
    widths = [max(len(r[i]) for r in rows) for i in range(4)]
    lines = ["throughput (events/second):"]
    for i, row in enumerate(rows):
        lines.append(
            "  " + "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
        if i == 0:
            lines.append("  " + "-" * (sum(widths) + 6))
    return lines


def floor_check(new: Dict, events_per_sec_floor: float) -> List[str]:
    """Regression lines for figures below the absolute events/sec floor
    (the CI perf-smoke gate; applies to the candidate document only)."""
    out: List[str] = []
    for fig_id, n in sorted(new["figures"].items()):
        rate = n.get("events_per_second")
        if rate is not None and rate < events_per_sec_floor:
            out.append(
                f"{fig_id}: events/sec {rate:.0f} below the floor "
                f"{events_per_sec_floor:.0f}"
            )
    return out


def compare(old: Dict, new: Dict, wall_tolerance: float) -> tuple:
    """Returns (regressions, infos, drifts): two lists of human-readable
    lines plus the quantitative mismatches behind the regressions as
    ``(figure, counter, baseline, current, relative_delta)`` tuples for
    :func:`render_drift_table`."""
    regressions: List[str] = []
    infos: List[str] = []
    drifts: List[tuple] = []
    if old.get("scale") != new.get("scale"):
        infos.append(
            f"note: comparing different scales "
            f"({old.get('scale')!r} vs {new.get('scale')!r})"
        )
    old_jobs = (old.get("executor") or {}).get("jobs", 1)
    new_jobs = (new.get("executor") or {}).get("jobs", 1)
    if old_jobs != new_jobs:
        infos.append(
            f"note: executor jobs differ ({old_jobs} vs {new_jobs}); "
            f"wall-clock comparisons are apples-to-oranges "
            f"(modelled series must still match exactly)"
        )
    for fig_id, o in sorted(old["figures"].items()):
        n = new["figures"].get(fig_id)
        if n is None:
            regressions.append(f"{fig_id}: figure missing from new file")
            continue
        # host cost: wall clock and events/second
        ow, nw = o["wall_seconds"], n["wall_seconds"]
        if ow > 0:
            rel = (nw - ow) / ow
            if rel > wall_tolerance:
                regressions.append(
                    f"{fig_id}: wall-clock regression {ow:.2f}s -> {nw:.2f}s "
                    f"(+{rel:.0%}, tolerance {wall_tolerance:.0%})"
                )
                drifts.append((fig_id, "wall_seconds", ow, nw, rel))
            elif abs(rel) > 0.02:
                word = "slower" if rel > 0 else "faster"
                infos.append(f"{fig_id}: wall-clock {abs(rel):.0%} {word} ({ow:.2f}s -> {nw:.2f}s)")
        # engine counters (schema 3): deterministic per seed, so any
        # change is a semantic model/kernel change — compared exactly,
        # but only when both documents carry the field.
        # peak_queue_depth changed meaning in schema 4 (live events only,
        # tombstones excluded), so across the 3<->4 boundary it is
        # reported as info instead of compared exactly.
        counters = ["events", "recomputes", "peak_queue_depth"]
        peak_regime = (old["schema"] >= 4) == (new["schema"] >= 4)
        if not peak_regime and "peak_queue_depth" in o and "peak_queue_depth" in n:
            counters.remove("peak_queue_depth")
            if o["peak_queue_depth"] != n["peak_queue_depth"]:
                infos.append(
                    f"{fig_id}: peak_queue_depth {o['peak_queue_depth']} -> "
                    f"{n['peak_queue_depth']} (schema 3->4 semantic change: "
                    f"live events only; not compared)"
                )
        for counter in counters:
            if counter in o and counter in n and o[counter] != n[counter]:
                regressions.append(
                    f"{fig_id}: modelled counter {counter!r} changed: "
                    f"{o[counter]} -> {n[counter]} (deterministic per seed; "
                    f"regenerate the baseline if this is intentional)"
                )
                drifts.append(
                    (fig_id, counter, o[counter], n[counter],
                     _rel_drift(o[counter], n[counter]))
                )
        # derived rates: wall-clock in the denominator, so noisy — only
        # slowdowns beyond the tolerance fail
        for rate in ("events_per_second", "recomputes_per_second"):
            if rate not in o or rate not in n or o[rate] <= 0:
                continue
            rel = (o[rate] - n[rate]) / o[rate]
            if rel > wall_tolerance:
                regressions.append(
                    f"{fig_id}: {rate} regression {o[rate]:.0f} -> {n[rate]:.0f} "
                    f"(-{rel:.0%}, tolerance {wall_tolerance:.0%})"
                )
                drifts.append((fig_id, rate, o[rate], n[rate], rel))
            elif abs(rel) > 0.02:
                word = "slower" if rel > 0 else "faster"
                infos.append(
                    f"{fig_id}: {rate} {abs(rel):.0%} {word} "
                    f"({o[rate]:.0f} -> {n[rate]:.0f})"
                )
        # modelled results: any drift is a regression
        for name, os_ in sorted(o["series"].items()):
            ns = n["series"].get(name)
            if ns is None:
                regressions.append(f"{fig_id}: series {name!r} missing from new file")
                continue
            if list(os_["xs"]) != list(ns["xs"]):
                regressions.append(f"{fig_id}: series {name!r} x-grid changed")
                continue
            for i, (om, nm) in enumerate(zip(os_["means"], ns["means"])):
                if _rel_drift(om, nm) > DRIFT_EPS:
                    regressions.append(
                        f"{fig_id}: modelled drift in {name!r}[{i}]: "
                        f"{om!r} -> {nm!r}"
                    )
                    drifts.append(
                        (fig_id, f"{name}[{i}]", om, nm, _rel_drift(om, nm))
                    )
        # shape checks
        if n["checks_passed"] < n["checks_total"] and (
            o["checks_passed"] == o["checks_total"]
        ):
            regressions.append(
                f"{fig_id}: shape checks now failing "
                f"({n['checks_passed']}/{n['checks_total']}, "
                f"was {o['checks_passed']}/{o['checks_total']})"
            )
    for fig_id in sorted(set(new["figures"]) - set(old["figures"])):
        infos.append(f"{fig_id}: new figure (no baseline)")
    return regressions, infos, drifts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH json files; non-zero exit on regression"
    )
    parser.add_argument(
        "old",
        help="baseline BENCH json, or '-' to skip the baseline comparison "
             "and only apply --fail-under-events-per-sec to the candidate",
    )
    parser.add_argument("new", help="candidate BENCH json")
    parser.add_argument(
        "--wall-tolerance", type=float, default=0.10, metavar="FRAC",
        help="allowed fractional wall-clock growth per figure (default 0.10)",
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows in the drift table printed on mismatch (default 10)",
    )
    parser.add_argument(
        "--fail-under-events-per-sec", type=float, default=None, metavar="RATE",
        help="absolute floor: fail if any candidate figure ran below this "
             "many simulator events per wall-clock second",
    )
    args = parser.parse_args(argv)
    if args.old != "-" and not os.path.exists(args.old):
        print(f"error: no baseline found at {args.old}", file=sys.stderr)
        print(
            "hint: generate one with 'PYTHONPATH=src python -m "
            "repro.harness.bench --out benchmarks/BENCH_<sha>.json' and "
            "commit it under benchmarks/",
            file=sys.stderr,
        )
        return 2
    try:
        old = load(args.old) if args.old != "-" else None
        new = load(args.new)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if old is not None:
        regressions, infos, drifts = compare(old, new, args.wall_tolerance)
        print(
            f"comparing {old.get('git_sha', '?')} ({args.old}) -> "
            f"{new.get('git_sha', '?')} ({args.new})"
        )
        for line in render_throughput_table(old, new):
            print(f"  {line}")
    else:
        regressions, infos, drifts = [], [], []
        print(f"no baseline (floor-only mode): {new.get('git_sha', '?')} ({args.new})")
    if args.fail_under_events_per_sec is not None:
        regressions.extend(floor_check(new, args.fail_under_events_per_sec))
    for line in infos:
        print(f"  info: {line}")
    if regressions:
        for line in regressions:
            print(f"  REGRESSION: {line}")
        for line in render_drift_table(drifts, top=args.top):
            print(line)
        print(f"{len(regressions)} regression(s) found")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
