#!/usr/bin/env python
"""Standalone simflow launcher (equivalent to ``python -m repro.analysis``).

Inserts the in-repo ``src/`` onto ``sys.path`` so the whole-program
checker runs from a fresh checkout with no install step::

    python tools/simflow.py src
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
